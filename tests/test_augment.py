"""Tests for event-stream augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    EventStream,
    mirror_horizontal,
    polarity_flip,
    random_crop_time,
    spatial_jitter,
    time_jitter,
    time_reverse,
)


def base_stream(seed=0, shape=(8, 2, 12, 12), density=0.1):
    rng = np.random.default_rng(seed)
    return EventStream.from_dense((rng.random(shape) < density).astype(np.uint8))


class TestSpatialJitter:
    def test_zero_shift_identity(self):
        s = base_stream()
        assert spatial_jitter(s, 0) is s

    def test_shift_is_global(self):
        # All surviving events move by the same offset.
        s = base_stream()
        out = spatial_jitter(s, 3, seed=1)
        if len(out) == len(s):
            dx = np.unique(out.to_dense().nonzero()[3] if False else [])
        # Check via per-event correspondence on interior events only:
        # events that survive keep relative geometry, so pairwise
        # differences within a timestep are preserved.
        sub_in = s.events_at(int(s.t[0]))
        sub_out = out.events_at(int(s.t[0]))
        if len(sub_in) >= 2 and len(sub_out) == len(sub_in):
            din = np.diff(np.sort(sub_in.x))
            dout = np.diff(np.sort(sub_out.x))
            assert np.array_equal(din, dout)

    def test_border_events_clipped(self):
        s = EventStream([0], [0], [11], [11], (1, 1, 12, 12))
        out = spatial_jitter(s, 5, seed=7)  # may push outside
        assert len(out) <= 1
        if len(out):
            assert 0 <= out.x[0] < 12 and 0 <= out.y[0] < 12

    def test_envelope_preserved(self):
        s = base_stream()
        assert spatial_jitter(s, 2, seed=3).shape == s.shape

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spatial_jitter(base_stream(), -1)

    def test_deterministic(self):
        s = base_stream()
        assert spatial_jitter(s, 2, seed=5) == spatial_jitter(s, 2, seed=5)


class TestTimeJitter:
    def test_zero_identity(self):
        s = base_stream()
        assert time_jitter(s, 0) is s

    def test_events_stay_in_envelope(self):
        s = base_stream()
        out = time_jitter(s, 4, seed=1)
        assert out.t.min() >= 0 and out.t.max() < s.n_steps

    def test_event_count_can_only_drop_via_collisions(self):
        s = base_stream()
        out = time_jitter(s, 2, seed=2)
        assert len(out) <= len(s)
        assert len(out) > 0

    def test_spatial_positions_untouched(self):
        s = base_stream()
        out = time_jitter(s, 3, seed=3)
        collapsed_in = s.to_dense().sum(axis=0)
        collapsed_out = out.to_dense().sum(axis=0)
        # collisions may merge counts, but no new pixel may appear
        assert np.all((collapsed_out > 0) <= (collapsed_in > 0))


class TestPolarityFlip:
    def test_full_flip_swaps_channels(self):
        s = base_stream()
        out = polarity_flip(s, probability=1.0)
        dense_in = s.to_dense()
        dense_out = out.to_dense()
        assert np.array_equal(dense_out[:, 0], dense_in[:, 1])
        assert np.array_equal(dense_out[:, 1], dense_in[:, 0])

    def test_double_flip_is_identity(self):
        s = base_stream()
        assert polarity_flip(polarity_flip(s, 1.0), 1.0) == s

    def test_requires_two_channels(self):
        s = EventStream([0], [0], [0], [0], (1, 3, 2, 2))
        with pytest.raises(ValueError, match="2-channel"):
            polarity_flip(s)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            polarity_flip(base_stream(), probability=1.5)


class TestMirrorAndReverse:
    def test_mirror_is_involution(self):
        s = base_stream()
        assert mirror_horizontal(mirror_horizontal(s)) == s

    def test_mirror_moves_left_to_right(self):
        s = EventStream([0], [0], [0], [3], (1, 1, 6, 8))
        assert int(mirror_horizontal(s).x[0]) == 7

    def test_time_reverse_is_involution(self):
        s = base_stream()
        assert time_reverse(time_reverse(s)) == s

    def test_time_reverse_flips_order(self):
        s = EventStream([0, 5], [0, 0], [1, 2], [1, 2], (6, 1, 4, 4))
        out = time_reverse(s)
        assert set(out.t.tolist()) == {0, 5}
        assert int(out.events_at(0).x[0]) == 2  # the late event now leads

    def test_preserves_event_count(self):
        s = base_stream()
        assert len(mirror_horizontal(s)) == len(s)
        assert len(time_reverse(s)) == len(s)


class TestRandomCropTime:
    def test_crop_length(self):
        out = random_crop_time(base_stream(), 4, seed=0)
        assert out.n_steps == 4

    def test_full_length_crop_keeps_everything(self):
        s = base_stream()
        out = random_crop_time(s, s.n_steps, seed=0)
        assert out == s

    def test_crop_validation(self):
        with pytest.raises(ValueError):
            random_crop_time(base_stream(), 0)
        with pytest.raises(ValueError):
            random_crop_time(base_stream(), 100)

    def test_cropped_events_are_subset(self):
        s = base_stream()
        out = random_crop_time(s, 3, seed=4)
        dense = s.to_dense()
        dense_out = out.to_dense()
        # The cropped tensor must appear as a contiguous slab of the input.
        found = any(
            np.array_equal(dense[start : start + 3], dense_out)
            for start in range(s.n_steps - 2)
        )
        assert found


class TestAugmentationProperties:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_all_transforms_keep_envelope_valid(self, seed):
        s = base_stream(seed=seed)
        for out in (
            spatial_jitter(s, 2, seed),
            time_jitter(s, 2, seed),
            polarity_flip(s, 0.5, seed),
            mirror_horizontal(s),
            time_reverse(s),
        ):
            assert out.shape == s.shape
            if len(out):
                assert out.t.max() < s.n_steps
                assert out.x.max() < s.shape[3]
                assert out.y.max() < s.shape[2]
