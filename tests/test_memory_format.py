"""Tests for event memory images and 4-bit weight packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    DEFAULT_FORMAT,
    EventOp,
    EventStream,
    decode_inference,
    decode_updates,
    encode_inference,
    pack_weights,
    unpack_weights,
)


def make_stream(seed=0, shape=(5, 2, 8, 8), density=0.1):
    rng = np.random.default_rng(seed)
    dense = (rng.random(shape) < density).astype(np.uint8)
    return EventStream.from_dense(dense)


class TestEncodeInference:
    def test_image_starts_with_reset(self):
        words = encode_inference(make_stream())
        first = DEFAULT_FORMAT.unpack(int(words[0]))
        assert first.op == EventOp.RST_OP

    def test_one_fire_marker_per_step(self):
        stream = make_stream(shape=(7, 2, 8, 8))
        _, counts = decode_inference(encode_inference(stream), stream.shape)
        assert counts["fires"] == 7
        assert counts["resets"] == 1

    def test_updates_roundtrip(self):
        stream = make_stream(seed=3)
        words = encode_inference(stream)
        assert decode_updates(words, stream.shape) == stream

    def test_word_count(self):
        stream = make_stream(seed=4)
        words = encode_inference(stream)
        assert words.size == 1 + len(stream) + stream.n_steps

    def test_no_reset_option(self):
        stream = make_stream()
        _, counts = decode_inference(
            encode_inference(stream, include_reset=False), stream.shape
        )
        assert counts["resets"] == 0

    def test_single_trailing_fire_option(self):
        stream = make_stream(shape=(6, 2, 8, 8))
        words = encode_inference(stream, fire_every_step=False)
        _, counts = decode_inference(words, stream.shape)
        assert counts["fires"] == 1
        last = DEFAULT_FORMAT.unpack(int(words[-1]))
        assert last.op == EventOp.FIRE_OP and last.t == 5

    def test_updates_precede_their_fire_marker(self):
        stream = make_stream(seed=5)
        words = encode_inference(stream)
        ops, ts, *_ = DEFAULT_FORMAT.unpack_array(words)
        # After each FIRE at step t, no UPDATE with time <= t may appear.
        last_fire_t = -1
        for op, t in zip(ops, ts):
            if op == int(EventOp.FIRE_OP):
                last_fire_t = t
            elif op == int(EventOp.UPDATE_OP):
                assert t > last_fire_t

    def test_rejects_streams_longer_than_time_field(self):
        stream = EventStream.empty((300, 1, 4, 4))
        with pytest.raises(ValueError, match="steps"):
            encode_inference(stream)

    def test_empty_stream_still_brackets(self):
        stream = EventStream.empty((3, 1, 4, 4))
        _, counts = decode_inference(encode_inference(stream), stream.shape)
        assert counts == {"resets": 1, "fires": 3}

    @given(st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed):
        stream = make_stream(seed=seed, shape=(6, 3, 10, 10), density=0.15)
        assert decode_updates(encode_inference(stream), stream.shape) == stream


class TestWeightPacking:
    def test_roundtrip_exact_multiple(self):
        w = np.arange(-8, 8)  # exactly 16 = 2 words
        words = pack_weights(w)
        assert words.size == 2
        assert np.array_equal(unpack_weights(words, 16), w)

    def test_roundtrip_with_padding(self):
        w = np.array([1, -2, 3])
        words = pack_weights(w)
        assert words.size == 1
        assert np.array_equal(unpack_weights(words, 3), w)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="4-bit"):
            pack_weights(np.array([8]))
        with pytest.raises(ValueError, match="4-bit"):
            pack_weights(np.array([-9]))

    def test_negative_weights_sign_extend(self):
        w = np.array([-1, -8, 7, 0])
        assert np.array_equal(unpack_weights(pack_weights(w), 4), w)

    def test_multidimensional_input_flattens(self):
        w = np.arange(-8, 8).reshape(4, 4) % 8 - 4
        out = unpack_weights(pack_weights(w), 16)
        assert np.array_equal(out, w.reshape(-1))

    def test_unpack_count_validation(self):
        words = pack_weights(np.zeros(8, dtype=int))
        with pytest.raises(ValueError, match="cannot unpack"):
            unpack_weights(words, 9)

    def test_empty_weights(self):
        assert pack_weights(np.zeros(0, dtype=int)).size == 0

    @given(st.lists(st.integers(-8, 7), min_size=0, max_size=64))
    @settings(max_examples=50)
    def test_roundtrip_property(self, values):
        w = np.array(values, dtype=int)
        assert np.array_equal(unpack_weights(pack_weights(w), w.size), w)
