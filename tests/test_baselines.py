"""Tests for the dense engine baseline and the Table II records."""

import pytest

from repro.baselines import (
    TABLE2_LITERATURE,
    DenseEngine,
    DenseEngineConfig,
    PlatformRecord,
    improvement_over,
    sne_record,
)
from repro.hw import LayerGeometry, LayerKind, LayerProgram, PAPER_CONFIG
import numpy as np


def conv_program(c_in=2, c_out=4, plane=8, kernel=3):
    g = LayerGeometry(
        LayerKind.CONV, c_in, plane, plane, c_out, plane, plane,
        kernel=kernel, stride=1, padding=kernel // 2,
    )
    w = np.zeros((c_out, c_in, kernel, kernel), dtype=np.int64)
    return LayerProgram(g, w, threshold=1, leak=0)


class TestDenseEngine:
    def test_conv_mac_count(self):
        g = conv_program(c_in=2, c_out=4, plane=8, kernel=3).geometry
        # 4 out ch x 64 positions x 2 in ch x 9 taps
        assert DenseEngine.layer_macs_per_step(g) == 4 * 64 * 2 * 9

    def test_dense_mac_count(self):
        g = LayerGeometry(LayerKind.DENSE, 2, 4, 4, 10, 1, 1)
        assert DenseEngine.layer_macs_per_step(g) == 10 * 32

    def test_depthwise_mac_count(self):
        g = LayerGeometry(LayerKind.DEPTHWISE, 3, 8, 8, 3, 4, 4, kernel=2, stride=2)
        assert DenseEngine.layer_macs_per_step(g) == 3 * 16 * 4

    def test_network_macs_scale_with_steps(self):
        engine = DenseEngine()
        programs = [conv_program()]
        assert engine.network_macs(programs, 10) == 10 * engine.network_macs(programs, 1)
        with pytest.raises(ValueError):
            engine.network_macs(programs, 0)

    def test_estimate_energy_is_activity_independent(self):
        """The defining property of the dense baseline."""
        engine = DenseEngine()
        est = engine.estimate([conv_program()], n_steps=10)
        assert est.energy_uj > 0 and est.time_s > 0
        # No activity parameter exists: the estimate is a pure function
        # of geometry, unlike the SNE cost model.

    def test_crossover_activity(self):
        engine = DenseEngine()
        programs = [conv_program()]
        dense_uj = engine.estimate(programs, 10).energy_uj
        # If SNE spends dense_uj/100 per event and full activity is 100
        # events, the crossover sits exactly at activity 1.0.
        crossover = engine.crossover_activity(
            programs, 10, sne_energy_per_event_uj=dense_uj / 100, events_at_full_activity=100
        )
        assert crossover == pytest.approx(1.0)

    def test_crossover_validation(self):
        with pytest.raises(ValueError):
            DenseEngine().crossover_activity([conv_program()], 10, 0.0, 100)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DenseEngineConfig(energy_per_mac_pj=0)
        with pytest.raises(ValueError):
            DenseEngineConfig(macs_per_cycle=0)
        with pytest.raises(ValueError):
            DenseEngineConfig(idle_power_mw=-1)


class TestTable2:
    def test_literature_rows_present(self):
        names = {r.name for r in TABLE2_LITERATURE}
        assert names == {
            "Tianjic", "Dynapsel", "ODIN", "TrueNorth", "SPOON", "Loihi", "SpiNNaker 2",
        }

    def test_sne_record_headline_numbers(self):
        sne = sne_record()
        assert sne.n_neurons == 8192
        assert sne.neuron_area_um2 == pytest.approx(19.9, abs=0.1)
        assert sne.performance_gops == pytest.approx(51.2)
        assert sne.efficiency_tops_w == pytest.approx(4.54, abs=0.01)
        assert sne.energy_per_sop_pj == pytest.approx(0.221, abs=0.001)
        assert sne.power_mw == pytest.approx(11.29, abs=0.01)
        assert sne.freq_mhz == 400
        assert sne.weight_bits == "4"

    def test_sne_has_lowest_energy_per_sop(self):
        """The paper's headline: lowest energy/OP on a digital platform."""
        sne = sne_record()
        for record in TABLE2_LITERATURE:
            if record.energy_per_sop_pj is not None:
                assert sne.energy_per_sop_pj < record.energy_per_sop_pj

    def test_sne_has_highest_efficiency(self):
        sne = sne_record()
        for record in TABLE2_LITERATURE:
            if record.efficiency_tops_w is not None:
                assert sne.efficiency_tops_w > record.efficiency_tops_w

    def test_improvement_over_tianjic_is_3_55x(self):
        tianjic = next(r for r in TABLE2_LITERATURE if r.name == "Tianjic")
        ratio = improvement_over(sne_record(), tianjic)
        assert ratio == pytest.approx(3.55, abs=0.01)

    def test_improvement_requires_efficiency(self):
        loihi = next(r for r in TABLE2_LITERATURE if r.name == "Loihi")
        with pytest.raises(ValueError, match="efficiency"):
            improvement_over(sne_record(), loihi)

    def test_smallest_neuron_area(self):
        """SNE's 19.9 um2/neuron is an order of magnitude below the rest."""
        sne = sne_record()
        for record in TABLE2_LITERATURE:
            if record.neuron_area_um2 is not None:
                assert sne.neuron_area_um2 < record.neuron_area_um2

    def test_record_is_frozen(self):
        with pytest.raises(AttributeError):
            sne_record().name = "other"

    def test_scaled_config_changes_record(self):
        half = sne_record(PAPER_CONFIG.with_slices(4))
        assert half.n_neurons == 4096
        assert half.performance_gops == pytest.approx(25.6)
