"""Tests for learning-rate schedules and early stopping."""

import numpy as np
import pytest

from repro.snn import (
    ConstantLR,
    CosineLR,
    EarlyStopping,
    StepDecayLR,
    TrainConfig,
    Trainer,
    build_small_network,
)
from tests.test_network_training import toy_dataset


class TestConstantLR:
    def test_constant(self):
        sched = ConstantLR(lr=0.01)
        assert sched.lr_at(0) == sched.lr_at(100) == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(lr=0)


class TestStepDecayLR:
    def test_decay_steps(self):
        sched = StepDecayLR(lr=1.0, step_epochs=2, gamma=0.5)
        assert sched.lr_at(0) == 1.0
        assert sched.lr_at(1) == 1.0
        assert sched.lr_at(2) == 0.5
        assert sched.lr_at(5) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecayLR(gamma=0)
        with pytest.raises(ValueError):
            StepDecayLR(step_epochs=0)
        with pytest.raises(ValueError):
            StepDecayLR(lr=1.0).lr_at(-1)


class TestCosineLR:
    def test_endpoints(self):
        sched = CosineLR(lr=1.0, lr_min=0.1, total_epochs=11)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(0.1)

    def test_monotone_decrease(self):
        sched = CosineLR(lr=1.0, lr_min=0.0, total_epochs=10)
        values = [sched.lr_at(e) for e in range(10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_clamps_past_horizon(self):
        sched = CosineLR(lr=1.0, lr_min=0.2, total_epochs=5)
        assert sched.lr_at(50) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineLR(lr=0.1, lr_min=0.2)
        with pytest.raises(ValueError):
            CosineLR(total_epochs=0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0.5, 0)
        assert not stopper.update(0.5, 1)  # no improvement, 1/2
        assert stopper.update(0.5, 2)  # no improvement, 2/2 -> stop

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        stopper.update(0.5, 1)
        assert not stopper.update(0.6, 2)  # improvement resets
        assert not stopper.update(0.6, 3)
        assert stopper.update(0.6, 4)

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.05)
        stopper.update(0.50, 0)
        assert stopper.update(0.52, 1)  # +0.02 < min_delta: not an improvement

    def test_best_tracking(self):
        stopper = EarlyStopping(patience=3)
        stopper.update(0.4, 0)
        stopper.update(0.7, 1)
        stopper.update(0.6, 2)
        assert stopper.best == 0.7 and stopper.best_epoch == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-1)


class TestTrainerIntegration:
    def test_schedule_changes_optimizer_lr(self):
        data = toy_dataset(n_per_class=4)
        net = build_small_network(input_size=8, channels=3, hidden=12, n_classes=2)
        sched = StepDecayLR(lr=1e-2, step_epochs=1, gamma=0.1)
        trainer = Trainer(net, TrainConfig(epochs=3, batch_size=4, schedule=sched))
        trainer.fit(data)
        assert trainer.optimizer.lr == pytest.approx(1e-4)

    def test_early_stopping_truncates_history(self):
        data = toy_dataset(n_per_class=6)
        train, val, _ = data.split((0.6, 0.2, 0.2), seed=0)
        net = build_small_network(input_size=8, channels=3, hidden=12, n_classes=2)
        trainer = Trainer(
            net,
            TrainConfig(epochs=20, batch_size=4, lr=1e-5,  # tiny lr: no progress
                        early_stopping=EarlyStopping(patience=2)),
        )
        history = trainer.fit(train, validation=val)
        assert len(history.val_accuracy) < 20

    def test_early_stopping_requires_validation(self):
        data = toy_dataset(n_per_class=4)
        net = build_small_network(input_size=8, channels=3, hidden=12, n_classes=2)
        trainer = Trainer(
            net, TrainConfig(epochs=2, early_stopping=EarlyStopping(patience=1))
        )
        with pytest.raises(ValueError, match="validation"):
            trainer.fit(data)
