"""SLO engine: rules, burn-rate evaluation, monitor, and surfaces.

Covers :mod:`repro.runtime.slo` — rule parsing/validation (JSON always,
TOML gated on the interpreter), multi-window burn-rate math over
journal events, registry-backed histogram rules with exemplar links,
the newly-breached semantics of :class:`SLOMonitor` — plus the three
operational surfaces: ``repro slo check`` exit codes, the serve wire
protocol's ``health`` op, and supervisor-emitted ``slo.breach``
journal events.
"""

import asyncio
import json
import sys

import pytest

from repro.runtime import obs, slo
from repro.runtime.obs import MetricsRegistry, SpanContext


@pytest.fixture(autouse=True)
def _isolated_obs(monkeypatch):
    old = obs.set_registry(MetricsRegistry())
    monkeypatch.delenv(obs.OBS_DIR_ENV, raising=False)
    obs.configure(False)
    yield
    obs.configure(False)
    obs.set_registry(old)


NOW = 1_000_000.0


def serve_events(n=100, slow=0, dur_ok=0.1, dur_slow=0.9, start=NOW - 100.0):
    """``n`` serve.request close events, the first ``slow`` of them over
    the 0.5s default target (each tagged with its trace)."""
    return [
        {"ts": start - i, "event": "serve.request", "trace_id": f"t{i}",
         "span_id": f"s{i}", "status": "ok",
         "duration_s": dur_slow if i < slow else dur_ok}
        for i in range(n)
    ]


class TestRules:
    def test_budget_latency_and_error_ratio(self):
        lat = slo.SLORule(name="l", metric="serve.request", target=0.5,
                          percentile=99.0)
        err = slo.SLORule(name="e", metric="chunk.complete", target=0.05,
                          kind="error_ratio")
        assert lat.budget == pytest.approx(0.01)
        assert err.budget == pytest.approx(0.05)

    @pytest.mark.parametrize("doc,match", [
        ({"metric": "m", "target": 1.0}, "missing required"),
        ({"name": "x", "metric": "m"}, "missing required"),
        ({"name": "x", "metric": "m", "target": 1.0, "kind": "weird"},
         "kind must be"),
        ({"name": "x", "metric": "m", "target": 1.0, "percentile": 100.0},
         "percentile"),
        ({"name": "x", "metric": "m", "target": 1.5, "kind": "error_ratio"},
         "error-ratio target"),
        ({"name": "x", "metric": "m", "target": 0.0}, "latency target"),
        ({"name": "x", "metric": "m", "target": 1.0, "window_s": 0},
         "window_s"),
        ({"name": "x", "metric": "m", "target": 1.0, "typo": 1},
         "unknown key"),
    ])
    def test_malformed_rules_raise_one_line_errors(self, doc, match):
        with pytest.raises(slo.SLOError, match=match):
            slo.rule_from_doc(doc)

    def test_rules_roundtrip_through_json_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            {"slos": [r.to_doc() for r in slo.default_rules()]}))
        loaded = slo.load_rules(path)
        assert loaded == slo.default_rules()

    def test_bare_list_layout_also_loads(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([slo.default_rules()[0].to_doc()]))
        assert len(slo.load_rules(path)) == 1

    def test_missing_unparsable_empty_and_duplicate_files(self, tmp_path):
        with pytest.raises(slo.SLOError, match="not found"):
            slo.load_rules(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(slo.SLOError, match="cannot parse"):
            slo.load_rules(bad)
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        with pytest.raises(slo.SLOError, match="no SLO rules"):
            slo.load_rules(empty)
        dupe = tmp_path / "dupe.json"
        doc = slo.default_rules()[0].to_doc()
        dupe.write_text(json.dumps([doc, doc]))
        with pytest.raises(slo.SLOError, match="duplicate"):
            slo.load_rules(dupe)

    def test_toml_rules_gated_on_tomllib(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text('[[slos]]\nname = "a"\nmetric = "serve.request"\n'
                        'target = 0.5\n')
        if sys.version_info >= (3, 11):
            assert slo.load_rules(path)[0].name == "a"
        else:  # pragma: no cover - exercised on the 3.10 CI lane
            with pytest.raises(slo.SLOError, match="tomllib"):
                slo.load_rules(path)


class TestJournalEvaluation:
    def _serve_rule(self, **kw):
        base = dict(name="p99", metric="serve.request", target=0.5,
                    percentile=99.0, window_s=3600.0, burn_threshold=1.0)
        base.update(kw)
        return slo.SLORule(**base)

    def test_burning_in_both_windows_breaches(self):
        # 5% slow against a 1% budget -> burn 5.0 in long and short.
        st = slo.evaluate_slos([self._serve_rule()],
                               events=serve_events(100, slow=5),
                               now=NOW)[0]
        assert not st.ok
        assert st.burn_rates["long"] == pytest.approx(5.0)
        assert st.burn_rates["short"] == pytest.approx(5.0)
        assert st.measured == pytest.approx(0.05)
        assert st.exemplar_trace in {f"t{i}" for i in range(5)}

    def test_within_budget_is_ok(self):
        st = slo.evaluate_slos([self._serve_rule()],
                               events=serve_events(200, slow=1),
                               now=NOW)[0]
        assert st.ok
        assert st.burn_rates["long"] < 1.0

    def test_recovered_short_window_suppresses_the_alert(self):
        # Slow requests older than the short window (300s) but inside
        # the long one, plus fresh healthy traffic: long burns, short
        # does not -> no breach (the incident is over).
        old_bad = serve_events(20, slow=20, start=NOW - 1800.0)
        fresh_ok = serve_events(20, slow=0, start=NOW - 10.0)
        st = slo.evaluate_slos([self._serve_rule()],
                               events=old_bad + fresh_ok, now=NOW)[0]
        assert st.burn_rates["long"] > 1.0
        assert st.burn_rates["short"] == pytest.approx(0.0)
        assert st.ok

    def test_no_data_is_healthy(self):
        st = slo.evaluate_slos([self._serve_rule()], events=[], now=NOW)[0]
        assert st.ok
        assert st.burn_rates == {}
        assert st.measured is None

    def test_error_ratio_rule_counts_bad_metric_events(self):
        rule = slo.SLORule(name="chunks", metric="chunk.complete",
                           bad_metric="chunk.failed", target=0.05,
                           kind="error_ratio")
        events = (
            [{"ts": NOW - i, "event": "chunk.complete"} for i in range(18)]
            + [{"ts": NOW - 50, "event": "chunk.failed",
                "trace_id": "tr-bad"},
               {"ts": NOW - 51, "event": "chunk.failed"}]
        )
        st = slo.evaluate_slos([rule], events=events, now=NOW)[0]
        assert st.total == 20 and st.bad == 2
        assert st.burn_rates["long"] == pytest.approx(2.0)
        assert not st.ok
        assert st.exemplar_trace == "tr-bad"


class TestRegistryEvaluation:
    def test_histogram_rule_with_exemplar_link(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_job_duration_seconds", "x")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        rule = slo.SLORule(name="jobs", metric="repro_job_duration_seconds",
                           target=10.0, percentile=99.0)
        assert slo.evaluate_slos([rule], registry=reg, now=NOW)[0].ok
        with obs.activate(SpanContext("tr-slow", "sp")):
            h.observe(11.0)
        st = slo.evaluate_slos([rule], registry=reg, now=NOW)[0]
        assert not st.ok
        assert st.source == "registry"
        assert st.burn_rates["lifetime"] == pytest.approx(25.0)
        assert st.exemplar_trace == "tr-slow"

    def test_absent_metric_or_registry_is_ok(self):
        rule = slo.SLORule(name="jobs", metric="repro_nope_seconds",
                           target=1.0)
        assert slo.evaluate_slos([rule], registry=MetricsRegistry(),
                                 now=NOW)[0].ok
        assert slo.evaluate_slos([rule], now=NOW)[0].ok


class TestMonitor:
    def test_reports_only_newly_breached_rules(self):
        rule = slo.SLORule(name="p99", metric="serve.request", target=0.5)
        mon = slo.SLOMonitor([rule], clock=lambda: NOW)
        mon.feed(serve_events(100, slow=5))
        mon.evaluate()
        assert [s.rule.name for s in mon.last_breaches] == ["p99"]
        mon.evaluate()  # still breaching, but not NEWLY breaching
        assert mon.last_breaches == []

    def test_rebreach_after_recovery_fires_again(self):
        rule = slo.SLORule(name="p99", metric="serve.request", target=0.5,
                           window_s=120.0)
        clock = {"now": NOW}
        mon = slo.SLOMonitor([rule], clock=lambda: clock["now"])
        mon.feed(serve_events(10, slow=10, start=NOW - 5.0))
        mon.evaluate()
        assert mon.last_breaches
        # All events age out of the window -> recovered.
        clock["now"] = NOW + 1000.0
        mon.evaluate()
        assert mon.last_breaches == []
        mon.feed(serve_events(10, slow=10, start=clock["now"] - 5.0))
        mon.evaluate()
        assert mon.last_breaches, "a fresh incident must re-alert"


class TestSupervisorBreachEvents:
    def test_tick_journals_one_breach_per_incident(self, tmp_path):
        from repro.runtime.supervisor import Supervisor

        obs.configure(tmp_path / "obs")
        journal = obs.get_journal()
        for ev in serve_events(50, slow=50, start=obs.time.time()):
            journal.emit_record(ev)
        rule = slo.SLORule(name="p99", metric="serve.request", target=0.5)
        sup = Supervisor(tmp_path / "spool", min_workers=0, max_workers=1,
                         worker_factory=lambda seq: (f"w{seq}", _Inert()),
                         slo_rules=[rule])
        try:
            sup.tick()
            sup.tick()
        finally:
            sup.close()
        events = obs.read_journal(tmp_path / "obs" / "journal.ndjson")
        breaches = [e for e in events if e.get("event") == "slo.breach"]
        assert len(breaches) == 1  # newly-breached only, not per tick
        assert breaches[0]["rule"] == "p99"
        assert breaches[0]["burn_rates"]["long"] > 1.0
        counter = obs.get_registry().counter("repro_supervisor_events_total")
        assert counter.value(op="slo_breach") == 1

    def test_without_obs_dir_slo_monitoring_stays_off(self, tmp_path):
        from repro.runtime.supervisor import Supervisor

        sup = Supervisor(tmp_path / "spool", min_workers=0, max_workers=1,
                         worker_factory=lambda seq: (f"w{seq}", _Inert()),
                         slo_rules=slo.default_rules())
        try:
            assert sup._slo_monitor is None
            sup.tick()  # must not raise
        finally:
            sup.close()


class _Inert:
    """Worker handle stub for supervisor tests (never spawns anything)."""

    pid = 0

    def is_alive(self):
        return True

    def terminate(self):
        pass

    def join(self, timeout=None):
        pass


class TestServeHealthOp:
    def _roundtrip(self, lines, **server_kw):
        from repro.runtime.dispatch import LocalDispatcher
        from repro.runtime.serve import AsyncServer, serve_tcp

        async def body():
            srv = AsyncServer(dispatcher=LocalDispatcher("serial"),
                              **server_kw)
            tcp = await serve_tcp(srv)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for line in lines:
                writer.write(line.encode() + b"\n")
            await writer.drain()
            out = [json.loads(await reader.readline()) for _ in lines]
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            await srv.aclose()
            await srv.dispatcher.aclose()
            return out

        return asyncio.run(asyncio.wait_for(body(), 30))

    def test_health_on_fresh_server_is_healthy(self):
        out = self._roundtrip([json.dumps({"id": "h", "op": "health"})])[0]
        assert out["ok"] is True
        assert out["health"]["healthy"] is True
        names = {s["name"] for s in out["health"]["slos"]}
        assert names == {r.name for r in slo.default_rules()}

    def test_health_reports_breach_from_journal(self, tmp_path):
        obs.configure(tmp_path / "obs")
        journal = obs.get_journal()
        for ev in serve_events(50, slow=50, start=obs.time.time() - 10.0):
            journal.emit_record(ev)
        out = self._roundtrip([json.dumps({"id": "h", "op": "health"})])[0]
        assert out["health"]["healthy"] is False
        bad = {s["name"]: s for s in out["health"]["slos"]}["serve-latency-p99"]
        assert bad["ok"] is False
        assert bad["burn_rates"]["long"] > 1.0

    def test_custom_rules_and_unknown_op_listing(self):
        rule = slo.SLORule(name="only-me", metric="serve.request", target=9.9)
        out = self._roundtrip([json.dumps({"id": "h", "op": "health"})],
                              slo_rules=[rule])[0]
        assert [s["name"] for s in out["health"]["slos"]] == ["only-me"]
        err = self._roundtrip([json.dumps({"id": "x", "op": "nope"})])[0]
        assert "health" in err["error"]


class TestSLOCLI:
    def _main(self, *argv):
        from repro.runtime.cli import main

        return main(list(argv))

    def _obs_with(self, tmp_path, events):
        obs.configure(tmp_path)
        journal = obs.get_journal()
        for ev in events:
            journal.emit_record(ev)
        obs.configure(False)
        return tmp_path

    def test_check_exits_0_on_pass_1_on_breach(self, tmp_path, capsys):
        target = self._obs_with(
            tmp_path, serve_events(100, slow=0, start=obs.time.time()))
        assert self._main("slo", "check", "--obs-dir", str(target)) == 0
        assert "ok" in capsys.readouterr().out
        breached = tmp_path / "breached"
        breached.mkdir()
        self._obs_with(breached,
                       serve_events(100, slow=50, start=obs.time.time()))
        assert self._main("slo", "check", "--obs-dir", str(breached)) == 1
        assert "BREACH" in capsys.readouterr().out

    def test_check_with_rules_file(self, tmp_path, capsys):
        target = self._obs_with(
            tmp_path, serve_events(10, slow=0, start=obs.time.time()))
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{"name": "mine",
                                      "metric": "serve.request",
                                      "target": 5.0}]))
        assert self._main("slo", "check", "--rules", str(rules),
                          "--obs-dir", str(target)) == 0
        assert "mine" in capsys.readouterr().out

    def test_empty_journal_passes_fresh_fleet(self, tmp_path, capsys):
        assert self._main("slo", "check", "--obs-dir", str(tmp_path)) == 0
        assert "no data" in capsys.readouterr().out

    def test_no_obs_dir_is_exit_2_one_liner(self, capsys):
        assert self._main("slo", "check") == 2
        err = capsys.readouterr().err
        assert "no observability directory" in err
        assert "Traceback" not in err

    def test_bad_rules_file_is_exit_2_one_liner(self, tmp_path, capsys):
        assert self._main("slo", "check", "--rules",
                          str(tmp_path / "nope.json"),
                          "--obs-dir", str(tmp_path)) == 2
        err = capsys.readouterr().err
        assert "repro slo: error:" in err
        assert "Traceback" not in err


class TestRenderTable:
    def test_table_marks_breaches_and_no_data(self):
        rule = slo.SLORule(name="p99", metric="serve.request", target=0.5)
        breached = slo.evaluate_slos([rule], events=serve_events(20, slow=20),
                                     now=NOW)
        text = slo.render_slo_table(breached)
        assert "BREACH" in text and "p99" in text
        fresh = slo.evaluate_slos([rule], events=[], now=NOW)
        assert "no data" in slo.render_slo_table(fresh)
        assert "no rules" in slo.render_slo_table([])
