"""Tests for the plumbing blocks: FIFO, memory, DMA, crossbar, collector,
register file."""

import numpy as np
import pytest

from repro.events import Event, EventOp, EventStream, encode_inference
from repro.hw import (
    Collector,
    Crossbar,
    DmaStreamer,
    Fifo,
    MainMemory,
    RegisterFile,
    SNEConfig,
)


class TestFifo:
    def test_fifo_order(self):
        f = Fifo(4)
        for i in range(3):
            f.push(i)
        assert [f.pop() for _ in range(3)] == [0, 1, 2]

    def test_full_push_rejected_and_counted(self):
        f = Fifo(2)
        assert f.push(1) and f.push(2)
        assert not f.push(3)
        assert f.stats.rejected_pushes == 1

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            Fifo(1).pop()

    def test_occupancy_tracking(self):
        f = Fifo(4)
        f.push(1)
        f.push(2)
        f.pop()
        f.push(3)
        assert f.stats.max_occupancy == 2

    def test_drain(self):
        f = Fifo(4)
        f.push("a")
        f.push("b")
        assert f.drain() == ["a", "b"] and f.empty

    def test_peek(self):
        f = Fifo(2)
        f.push(7)
        assert f.peek() == 7 and len(f) == 1

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            Fifo(0)


class TestMainMemory:
    def test_load_and_read(self):
        m = MainMemory(16, latency=2)
        m.load_image(4, np.array([11, 22], dtype=np.uint32))
        data, ready = m.read(4, now=0)
        assert data == 11 and ready == 2

    def test_load_rejects_overflow(self):
        m = MainMemory(4)
        with pytest.raises(ValueError, match="outside"):
            m.load_image(3, np.array([1, 2], dtype=np.uint32))

    def test_contention_counted(self):
        m = MainMemory(8, latency=1)
        m.read(0, now=0)
        m.read(1, now=0)  # port still busy this cycle
        assert m.stats.contention_stalls == 1

    def test_write_read_roundtrip(self):
        m = MainMemory(8, latency=0)
        m.write(3, 0xDEADBEEF, now=0)
        assert int(m.words[3]) == 0xDEADBEEF

    def test_address_validation(self):
        m = MainMemory(4)
        with pytest.raises(ValueError):
            m.read(4, 0)
        with pytest.raises(ValueError):
            m.write(-1, 0, 0)
        with pytest.raises(ValueError, match="32-bit"):
            m.write(0, 1 << 32, 0)


class TestDmaStreamer:
    def make_image(self, n_steps=4, density=0.2, seed=0):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n_steps, 2, 8, 8)) < density).astype(np.uint8)
        stream = EventStream.from_dense(dense)
        return stream, encode_inference(stream)

    def test_stream_in_decodes_full_image(self):
        stream, words = self.make_image()
        cfg = SNEConfig(n_slices=1)
        mem = MainMemory(words.size + 8, latency=2)
        mem.load_image(0, words)
        dma = DmaStreamer(cfg, mem)
        events = [e for e, _ in dma.stream_in(0, words.size)]
        assert len(events) == words.size
        assert events[0].op == EventOp.RST_OP
        updates = [e for e in events if e.op == EventOp.UPDATE_OP]
        assert len(updates) == len(stream)

    def test_fifo_hides_latency_at_event_rate(self):
        # One event per 48 cycles vs 2-cycle latency: no starvation
        # beyond the initial fill.
        _, words = self.make_image(density=0.3)
        cfg = SNEConfig(n_slices=1, memory_latency=2)
        mem = MainMemory(words.size, latency=2)
        mem.load_image(0, words)
        dma = DmaStreamer(cfg, mem)
        waits = [w for _, w in dma.stream_in(0, words.size)]
        assert sum(waits[1:]) == 0

    def test_degenerate_fifo_starves(self):
        _, words = self.make_image(density=0.3)
        cfg = SNEConfig(n_slices=1, dma_fifo_depth=1, cycles_per_event=1, cycles_per_fire=1)
        mem = MainMemory(words.size, latency=10)
        mem.load_image(0, words)
        dma = DmaStreamer(cfg, mem)
        list(dma.stream_in(0, words.size))
        assert dma.stats.starved_cycles > 0

    def test_stream_out_and_read_back(self):
        cfg = SNEConfig(n_slices=1)
        mem = MainMemory(32)
        dma = DmaStreamer(cfg, mem)
        events = [Event.update(1, 2, 3, 4), Event.fire(1)]
        n = dma.stream_out(8, events)
        assert n == 2
        back = dma.read_back(8, 2)
        assert back[0] == Event.update(1, 2, 3, 4)
        assert back[1].op == EventOp.FIRE_OP

    def test_window_validation(self):
        cfg = SNEConfig(n_slices=1)
        dma = DmaStreamer(cfg, MainMemory(4))
        with pytest.raises(ValueError):
            list(dma.stream_in(0, 5))
        with pytest.raises(ValueError):
            dma.stream_out(3, [Event.rst(), Event.rst()])


class _Sink:
    def __init__(self, accept_after=0):
        self.items = []
        self._reject = accept_after

    def accept(self, item):
        if self._reject > 0:
            self._reject -= 1
            return False
        self.items.append(item)
        return True


class TestCrossbar:
    def test_point_to_point_routing(self):
        xb = Crossbar(2, 3)
        sink = _Sink()
        xb.attach(1, sink)
        assert xb.route(0, 1, "evt")
        assert sink.items == ["evt"]
        assert xb.stats.point_to_point == 1

    def test_broadcast_reaches_all(self):
        xb = Crossbar(1, 3)
        sinks = [_Sink() for _ in range(3)]
        for i, s in enumerate(sinks):
            xb.attach(i, s)
        stalls = xb.broadcast(0, [0, 1, 2], "evt")
        assert stalls == 0
        assert all(s.items == ["evt"] for s in sinks)

    def test_broadcast_backpressure_counts_stalls(self):
        xb = Crossbar(1, 2)
        xb.attach(0, _Sink())
        xb.attach(1, _Sink(accept_after=3))
        stalls = xb.broadcast(0, [0, 1], "evt")
        assert stalls == 3
        assert xb.stats.broadcast_stall_cycles == 3

    def test_unattached_slave_raises(self):
        xb = Crossbar(1, 2)
        with pytest.raises(RuntimeError, match="no sink"):
            xb.route(0, 1, "evt")

    def test_index_validation(self):
        xb = Crossbar(1, 1)
        with pytest.raises(ValueError):
            xb.route(1, 0, "x")
        with pytest.raises(ValueError):
            xb.broadcast(0, [], "x")


class TestCollector:
    def test_round_robin_fairness(self):
        fifos = [Fifo(4) for _ in range(3)]
        for f in fifos:
            f.push(f"{id(f) % 97}a")
            f.push(f"{id(f) % 97}b")
        col = Collector(fifos)
        out = col.collect_all()
        assert len(out) == 6
        # round-robin: first three pops come from three different FIFOs
        assert len({o[:-1] for o in out[:3]}) == 3

    def test_collect_one_on_empty(self):
        col = Collector([Fifo(2)])
        assert col.collect_one() is None

    def test_backlog_stat(self):
        f = Fifo(4)
        f.push(1)
        f.push(2)
        col = Collector([f])
        col.collect_all()
        assert col.stats.max_backlog == 2
        assert col.stats.collected == 2

    def test_needs_sources(self):
        with pytest.raises(ValueError):
            Collector([])


class TestRegisterFile:
    def test_lif_programming_roundtrip(self):
        rf = RegisterFile(n_slices=2)
        rf.program_lif(1, threshold=42, leak=3)
        assert rf.lif_params(1) == (42, 3)
        assert rf.lif_params(0) == (0, 0)

    def test_interval_programming(self):
        rf = RegisterFile(2)
        rf.program_interval(0, 128, 512)
        assert rf.interval(0) == (128, 512)

    def test_weight_port_autoincrements(self):
        rf = RegisterFile(1, n_filter_sets=4, weights_per_set=8)
        rf.program_weights(0, 2, np.arange(8))
        assert np.array_equal(rf.weights(0, 2), np.arange(8))

    def test_weight_port_validates_set(self):
        rf = RegisterFile(1, n_filter_sets=2, weights_per_set=4)
        rf.write(rf.slice_addr(0, rf.map.FILTER_SET), 5)
        with pytest.raises(ValueError, match="filter set"):
            rf.write(rf.slice_addr(0, rf.map.WEIGHT_DATA), 1)

    def test_address_space_bounds(self):
        rf = RegisterFile(1)
        with pytest.raises(ValueError, match="register space"):
            rf.read(rf.map.SLICE_STRIDE * 4)

    def test_value_width_check(self):
        rf = RegisterFile(1)
        with pytest.raises(ValueError, match="32 bits"):
            rf.write(0, 1 << 33)

    def test_access_counters(self):
        rf = RegisterFile(1)
        rf.write(0, 1)
        rf.read(0)
        assert rf.writes == 1 and rf.reads == 1
