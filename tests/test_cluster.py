"""Tests for the TDM cluster model."""

import numpy as np
import pytest

from repro.hw import Cluster


class TestReset:
    def test_reset_clears_state(self):
        c = Cluster()
        c.apply_update(0, np.array([3]), np.array([5]), leak=0)
        c.reset(0)
        assert c.state[3] == 0

    def test_reset_realigns_tlu(self):
        c = Cluster()
        c.reset(7)
        assert c.tlu == 7


class TestUpdate:
    def test_accumulates_weight(self):
        c = Cluster()
        c.apply_update(0, np.array([0]), np.array([3]), leak=0)
        c.apply_update(0, np.array([0]), np.array([2]), leak=0)
        assert c.state[0] == 5

    def test_returns_sop_count(self):
        c = Cluster()
        n = c.apply_update(0, np.array([0, 1, 2]), np.array([1, 1, 1]), leak=0)
        assert n == 3 and c.stats.updates == 3

    def test_empty_update_is_free(self):
        c = Cluster()
        assert c.apply_update(0, np.array([], dtype=int), np.array([]), leak=0) == 0
        assert c.stats.events_seen == 0

    def test_per_event_saturation(self):
        c = Cluster(state_bits=8)
        c.apply_update(0, np.array([0]), np.array([120]), leak=0)  # wide weights for test
        c.apply_update(0, np.array([0]), np.array([120]), leak=0)
        assert c.state[0] == 127  # saturated, not 240
        c.apply_update(0, np.array([0]), np.array([-120]), leak=0)
        assert c.state[0] == 7  # saturation is not undone

    def test_rejects_out_of_range_neuron(self):
        c = Cluster(n_neurons=64)
        with pytest.raises(ValueError, match="TDM range"):
            c.apply_update(0, np.array([64]), np.array([1]), leak=0)

    def test_rejects_duplicate_neuron_in_one_event(self):
        c = Cluster()
        with pytest.raises(ValueError, match="twice"):
            c.apply_update(0, np.array([1, 1]), np.array([1, 1]), leak=0)

    def test_rejects_time_going_backwards(self):
        c = Cluster()
        c.apply_update(5, np.array([0]), np.array([1]), leak=0)
        with pytest.raises(ValueError, match="time-sorted"):
            c.apply_update(4, np.array([0]), np.array([1]), leak=0)


class TestLeakAndTLU:
    def test_catchup_applies_elapsed_decay(self):
        c = Cluster()
        c.apply_update(0, np.array([0]), np.array([10]), leak=2)
        c.apply_update(3, np.array([0]), np.array([1]), leak=2)
        # 3 elapsed steps * leak 2 = -6, then +1
        assert c.state[0] == 5

    def test_tlu_skip_statistic(self):
        c = Cluster()
        c.apply_update(0, np.array([0]), np.array([10]), leak=1)
        c.apply_update(10, np.array([0]), np.array([1]), leak=1)
        # 10 steps elapsed: a TLU-less design walks 10 updates, we do 1.
        assert c.stats.tlu_skipped_steps == 9

    def test_leak_affects_all_neurons_of_cluster(self):
        c = Cluster()
        c.apply_update(0, np.array([0, 5]), np.array([10, 8]), leak=3)
        c.catch_up(2, leak=3)
        assert c.state[0] == 4 and c.state[5] == 2


class TestFire:
    def test_fire_returns_and_resets(self):
        c = Cluster()
        c.apply_update(0, np.array([1, 2]), np.array([9, 3]), leak=0)
        fired = c.fire(0, threshold=5, leak=0)
        assert list(fired) == [1]
        assert c.state[1] == 0 and c.state[2] == 3

    def test_fire_applies_pending_leak_first(self):
        c = Cluster()
        c.apply_update(0, np.array([0]), np.array([6]), leak=2)
        fired = c.fire(1, threshold=5, leak=2)  # 6 - 2 = 4 < 5
        assert fired.size == 0

    def test_fire_counts(self):
        c = Cluster()
        c.apply_update(0, np.array([0, 1]), np.array([9, 9]), leak=0)
        c.fire(0, threshold=5, leak=0)
        assert c.stats.fires == 2

    def test_negative_state_never_fires(self):
        c = Cluster()
        c.apply_update(0, np.array([0]), np.array([-5]), leak=0)
        assert c.fire(0, threshold=1, leak=0).size == 0


class TestAccounting:
    def test_gating_counter(self):
        c = Cluster()
        c.note_gated()
        c.note_gated()
        assert c.stats.events_gated == 2

    def test_state_bounds_invariant(self):
        c = Cluster(state_bits=8)
        rng = np.random.default_rng(0)
        for t in range(20):
            idx = rng.choice(64, 5, replace=False)
            c.apply_update(t, idx, rng.integers(-8, 8, 5), leak=1)
            c.fire(t, threshold=20, leak=1)
        c.check_state_bounds()

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cluster(n_neurons=0)
