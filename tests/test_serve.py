"""Async serving front end: batching, streaming, cache, shutdown, wire.

:mod:`repro.runtime.serve` is the first piece of the stack that serves
*live* traffic, so these tests pin down the behaviours clients depend
on:

* requests arriving together coalesce into shared micro-batches,
  bounded by ``max_batch``;
* per-job results stream back **while the batch is still running**
  (proved by a deadlock-free gate, not by timing);
* cache hits short-circuit straight from the store — the backend pool
  is never touched;
* failures stay structured: a raising runner and a crashed backend
  both come back as ``ok=False`` results, never hung requests;
* shutdown drains: every request accepted before ``aclose()`` is
  answered, every one after is rejected;
* the NDJSON wire protocol answers good lines, bad lines, unknown
  kinds, and the ``stats``/``ping`` ops on one connection;
* protocol v2 negotiates via ``hello`` (v1 responses stay
  byte-compatible) and tags failures with structured error codes;
* admission control sheds past ``max_queue_depth`` (``overloaded``),
  per-connection credits bound in-flight requests, and queue depth is
  reported from the one obs gauge ``repro top`` reads.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.runtime import (
    AsyncServer,
    JobSpec,
    LatencyRecorder,
    ResultStore,
    ServeTelemetry,
    canonical_json,
    dse_point_job,
    register_runner,
    request_to_spec,
    serve_stdio,
    serve_tcp,
)
from repro.runtime.backends import SerialBackend, arun
from repro.runtime.dispatch import LocalDispatcher

# -- synthetic job kinds for the serving tests ------------------------------


@register_runner("t_quick")
def _run_quick(params, payload):
    return {"i": params["i"]}


@register_runner("t_sleep")
def _run_sleep(params, payload):
    time.sleep(params["s"])
    return {"slept": params["s"]}


@register_runner("t_fail")
def _run_fail(params, payload):
    raise RuntimeError(f"boom-{params['tag']}")


@register_runner("t_gate")
def _run_gate(params, payload):
    # Blocks until the test's consumer releases it; a bounded wait so a
    # regression fails the assertion instead of hanging the suite.
    assert payload["event"].wait(timeout=8), "gate never released"
    return {"gated": True}


def quick_spec(i: int) -> JobSpec:
    return JobSpec(kind="t_quick", key=canonical_json({"i": i}))


def sleep_spec(i: int, s: float) -> JobSpec:
    return JobSpec(kind="t_sleep", key=canonical_json({"i": i, "s": s}))


class RecordingBackend:
    """Serial execution that records every dispatched batch size."""

    name = "recording"
    workers = 1

    def __init__(self):
        self.batch_sizes = []

    def run(self, specs, on_result=None):
        self.batch_sizes.append(len(specs))
        return SerialBackend().run(specs, on_result=on_result)


class ExplodingBackend:
    """Fails the test if the pool is ever touched (cache-hit paths)."""

    name = "exploding"
    workers = 1

    def run(self, specs, on_result=None):
        raise AssertionError("backend must not be touched")


class CrashingBackend:
    """Simulates a pool-level crash (not a per-job failure)."""

    name = "crashing"
    workers = 1

    def run(self, specs, on_result=None):
        raise OSError("worker pool died")


def run_async(coro, timeout=30.0):
    """Drive one test coroutine with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


# -- arun: the awaitable backend bridge -------------------------------------


class TestArun:
    def test_yields_ordered_results_for_any_backend(self):
        async def body():
            specs = [quick_spec(i) for i in range(5)]
            got = [r async for r in arun("serial", specs)]
            assert [r.value["i"] for r in got] == list(range(5))
            assert all(r.ok for r in got)

        run_async(body())

    def test_empty_spec_list_yields_nothing(self):
        async def body():
            return [r async for r in arun("serial", [])]

        assert run_async(body()) == []

    def test_backend_crash_propagates(self):
        async def body():
            with pytest.raises(OSError, match="pool died"):
                async for _ in arun(CrashingBackend(), [quick_spec(0)]):
                    pass

        run_async(body())

    def test_short_delivery_is_a_contract_violation(self):
        class ShortBackend:
            name = "short"
            workers = 1

            def run(self, specs, on_result=None):
                out = SerialBackend().run(specs[:1], on_result=on_result)
                return out  # silently drops the rest

        async def body():
            with pytest.raises(RuntimeError, match="one result per spec"):
                async for _ in arun(ShortBackend(), [quick_spec(0), quick_spec(1)]):
                    pass

        run_async(body())


# -- micro-batch coalescing -------------------------------------------------


class TestCoalescing:
    def test_concurrent_requests_share_a_batch(self):
        rec = RecordingBackend()

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher(rec), batch_window_s=0.2,
                                   max_batch=16) as srv:
                results = await asyncio.gather(
                    *(srv.submit(quick_spec(i)) for i in range(6))
                )
            assert all(r.ok for r in results)
            return srv

        srv = run_async(body())
        assert sum(rec.batch_sizes) == 6
        assert max(rec.batch_sizes) > 1, "requests were never coalesced"
        assert srv.telemetry.batches == len(rec.batch_sizes)
        assert srv.telemetry.dispatched == 6

    def test_max_batch_caps_coalescing(self):
        rec = RecordingBackend()

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher(rec), batch_window_s=0.2,
                                   max_batch=2) as srv:
                await asyncio.gather(*(srv.submit(quick_spec(i)) for i in range(6)))

        run_async(body())
        assert sum(rec.batch_sizes) == 6
        assert max(rec.batch_sizes) <= 2
        assert len(rec.batch_sizes) >= 3

    def test_zero_window_still_answers_everything(self):
        rec = RecordingBackend()

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher(rec), batch_window_s=0.0,
                                   max_batch=8) as srv:
                results = await asyncio.gather(
                    *(srv.submit(quick_spec(i)) for i in range(4))
                )
            assert [r.value["i"] for r in results] == list(range(4))

        run_async(body())
        assert sum(rec.batch_sizes) == 4

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            AsyncServer(dispatcher=LocalDispatcher(SerialBackend()), max_batch=0)
        with pytest.raises(ValueError, match="batch_window_s"):
            AsyncServer(dispatcher=LocalDispatcher(SerialBackend()), batch_window_s=-0.1)


# -- streaming: results arrive before the batch completes -------------------


class TestStreaming:
    def test_results_stream_mid_batch_not_at_batch_end(self):
        # Job 1 blocks until the consumer has *received* job 0's result.
        # If results were only delivered when the whole batch completed,
        # this would deadlock (and the gate's bounded wait would fail).
        gate = threading.Event()
        s0 = quick_spec(0)
        s1 = JobSpec(kind="t_gate", key=canonical_json({"g": 1}),
                     payload={"event": gate})

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher("serial"), batch_window_s=0.2,
                                   max_batch=8) as srv:
                order = []
                async for i, result in srv.stream([s0, s1]):
                    assert result.ok, result.error
                    order.append(i)
                    if i == 0:
                        gate.set()
                assert order == [0, 1]

        run_async(body())

    def test_stream_preserves_input_order(self):
        async def body():
            specs = [quick_spec(i) for i in range(8)]
            async with AsyncServer(dispatcher=LocalDispatcher("thread", workers=4),
                                   batch_window_s=0.05, max_batch=8) as srv:
                got = [(i, r.value["i"]) async for i, r in srv.stream(specs)]
            assert got == [(i, i) for i in range(8)]

        run_async(body())


# -- cache integration ------------------------------------------------------


class TestCacheShortCircuit:
    def test_hit_never_touches_the_pool(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = quick_spec(7)
        store.put(spec, {"i": 7}, 0.25)

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher(ExplodingBackend()),
                                   cache=store) as srv:
                result = await srv.submit(spec)
            assert result.ok and result.cached
            assert result.value == {"i": 7}
            assert result.duration_s == 0.25
            assert srv.telemetry.cache_hits == 1
            assert srv.telemetry.batches == 0
            assert srv.stats()["cache_hit_ratio"] == 1.0

        run_async(body())

    def test_miss_computes_and_writes_through(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = quick_spec(3)

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher("serial"), cache=store) as srv:
                first = await srv.submit(spec)
                second = await srv.submit(spec)
            assert first.ok and not first.cached
            assert second.ok and second.cached
            assert srv.telemetry.cache_hits == 1
            assert srv.telemetry.computed == 1

        run_async(body())
        # The write-through landed in the shared store for other runs.
        assert ResultStore(tmp_path).get(spec).value == {"i": 3}

    def test_serve_lifetime_counters_reach_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = quick_spec(4)

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher("serial"), cache=store) as srv:
                await srv.submit(spec)
                await srv.submit(spec)

        run_async(body())
        life = ResultStore(tmp_path).lifetime_stats()
        assert life["hits"] == 1 and life["misses"] == 1
        assert life["stores"] == 1


# -- failure propagation ----------------------------------------------------


class TestFailures:
    def test_raising_job_is_a_structured_result(self):
        spec = JobSpec(kind="t_fail", key=canonical_json({"tag": "x"}))

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher("serial")) as srv:
                result = await srv.submit(spec)
            assert not result.ok
            assert "boom-x" in result.error
            assert srv.telemetry.failures == 1
            with pytest.raises(RuntimeError, match="boom-x"):
                result.unwrap()

        run_async(body())

    def test_mixed_batch_failures_map_to_the_right_requests(self):
        specs = [
            quick_spec(0),
            JobSpec(kind="t_fail", key=canonical_json({"tag": "mid"})),
            quick_spec(2),
        ]

        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher("serial"), batch_window_s=0.2,
                                   max_batch=8) as srv:
                results = [r async for _, r in srv.stream(specs)]
            assert [r.ok for r in results] == [True, False, True]
            assert "boom-mid" in results[1].error
            assert results[0].value == {"i": 0}
            assert results[2].value == {"i": 2}

        run_async(body())

    def test_backend_crash_becomes_structured_errors_for_all_in_flight(self):
        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher(CrashingBackend()),
                                   batch_window_s=0.1, max_batch=8) as srv:
                results = await asyncio.gather(
                    *(srv.submit(quick_spec(i)) for i in range(3))
                )
            assert all(not r.ok for r in results)
            assert all("crashed" in r.error for r in results)
            assert srv.telemetry.failures == 3

        run_async(body())


# -- graceful shutdown ------------------------------------------------------


class TestShutdown:
    def test_in_flight_requests_drain_before_close_returns(self):
        async def body():
            srv = AsyncServer(dispatcher=LocalDispatcher("thread", workers=2),
                              batch_window_s=0.01, max_batch=2)
            tasks = [
                asyncio.ensure_future(srv.submit(sleep_spec(i, 0.05)))
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let every submit reach the queue
            await srv.aclose()
            # aclose() returning means every accepted request is done.
            assert all(t.done() for t in tasks)
            results = [t.result() for t in tasks]
            assert all(r.ok for r in results)
            assert srv.telemetry.computed == 4

        run_async(body())

    def test_submissions_after_close_are_rejected(self):
        async def body():
            srv = AsyncServer(dispatcher=LocalDispatcher("serial"))
            async with srv:
                await srv.submit(quick_spec(0))
            assert srv.closed
            with pytest.raises(RuntimeError, match="closed"):
                await srv.submit(quick_spec(1))
            assert srv.telemetry.rejected == 1

        run_async(body())

    def test_aclose_is_idempotent(self):
        async def body():
            srv = AsyncServer(dispatcher=LocalDispatcher("serial"))
            async with srv:
                await srv.submit(quick_spec(0))
            await srv.aclose()
            await srv.aclose()

        run_async(body())

    def test_close_without_any_requests(self):
        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher("serial")):
                pass

        run_async(body())


# -- wire protocol ----------------------------------------------------------


class TestRequestToSpec:
    def test_builds_matching_specs(self):
        spec = request_to_spec({"kind": "dse_point", "params": {"n_slices": 4}})
        assert spec.job_hash == dse_point_job(4).job_hash

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            request_to_spec({"kind": "nope"})
        # sample_eval needs live payloads: not wire-servable by design.
        with pytest.raises(ValueError, match="unknown job kind"):
            request_to_spec({"kind": "sample_eval", "params": {}})

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="params must be an object"):
            request_to_spec({"kind": "dse_point", "params": [1]})
        with pytest.raises(ValueError, match="bad params"):
            request_to_spec({"kind": "dse_point", "params": {"n_slices": 0}})
        with pytest.raises(ValueError, match="bad params"):
            request_to_spec({"kind": "dse_point", "params": {"bogus": 1}})


class TestTCPProtocol:
    def _roundtrip(self, lines, tmp_path, n_responses=None):
        """Send ``lines`` over one TCP connection, return the decoded
        responses (completion order)."""

        async def body():
            store = ResultStore(tmp_path)
            srv = AsyncServer(dispatcher=LocalDispatcher("serial"), cache=store,
                              batch_window_s=0.005)
            tcp = await serve_tcp(srv)  # ephemeral loopback port
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for line in lines:
                writer.write(line.encode() + b"\n")
            await writer.drain()
            out = []
            for _ in range(n_responses if n_responses is not None else len(lines)):
                out.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            await srv.aclose()
            return out

        return run_async(body())

    def test_requests_answered_and_tagged_by_id(self, tmp_path):
        out = self._roundtrip(
            [
                json.dumps({"id": "a", "kind": "dse_point",
                            "params": {"n_slices": 1}}),
                json.dumps({"id": "b", "kind": "dse_point",
                            "params": {"n_slices": 8}}),
            ],
            tmp_path,
        )
        by_id = {o["id"]: o for o in out}
        assert by_id["a"]["ok"] and by_id["b"]["ok"]
        assert by_id["a"]["value"]["n_slices"] == 1
        assert by_id["b"]["value"]["n_slices"] == 8
        assert by_id["a"]["job_hash"] == dse_point_job(1).job_hash

    def test_repeat_request_served_from_cache(self, tmp_path):
        req = json.dumps({"id": "x", "kind": "dse_point",
                          "params": {"n_slices": 2}})
        first = self._roundtrip([req], tmp_path)[0]
        second = self._roundtrip([req], tmp_path)[0]
        assert not first["cached"]
        assert second["cached"]
        assert second["value"] == first["value"]

    def test_protocol_errors_are_structured_not_fatal(self, tmp_path):
        out = self._roundtrip(
            [
                "this is not json",
                json.dumps({"id": "u", "kind": "unknown_kind"}),
                json.dumps({"id": "o", "op": "bogus"}),
                json.dumps({"id": "ok", "kind": "baseline_compare",
                            "params": {"platform": "TrueNorth"}}),
            ],
            tmp_path,
        )
        by_id = {o.get("id"): o for o in out}
        assert not by_id[None]["ok"] and "bad request" in by_id[None]["error"]
        assert not by_id["u"]["ok"] and "unknown job kind" in by_id["u"]["error"]
        assert not by_id["o"]["ok"] and "unknown op" in by_id["o"]["error"]
        assert by_id["ok"]["ok"] and by_id["ok"]["value"]["improvement_x"] > 1

    def test_stats_and_ping_ops(self, tmp_path):
        out = self._roundtrip(
            [
                json.dumps({"id": "p", "op": "ping"}),
                json.dumps({"id": "q", "kind": "dse_point",
                            "params": {"n_slices": 4}}),
                json.dumps({"id": "s", "op": "stats"}),
            ],
            tmp_path,
        )
        by_id = {o["id"]: o for o in out}
        assert by_id["p"]["pong"] is True
        stats = by_id["s"]["stats"]
        assert stats["backend"] == "serial"
        assert {"requests", "in_flight", "queue_depth", "latency",
                "cache_hit_ratio"} <= set(stats)

    def test_metrics_op_returns_prometheus_text(self, tmp_path):
        out = self._roundtrip(
            [
                json.dumps({"id": "j", "kind": "dse_point",
                            "params": {"n_slices": 2}}),
                json.dumps({"id": "m", "op": "metrics"}),
            ],
            tmp_path,
        )
        by_id = {o["id"]: o for o in out}
        assert by_id["m"]["ok"]
        assert by_id["m"]["content_type"].startswith("text/plain")
        text = by_id["m"]["metrics"]
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_latency_seconds histogram" in text
        assert "# TYPE repro_serve_in_flight gauge" in text

    def test_job_responses_carry_trace_ids_when_journal_on(self, tmp_path):
        from repro.runtime import obs

        obs.configure(tmp_path / "obs")
        try:
            out = self._roundtrip(
                [json.dumps({"id": "a", "kind": "dse_point",
                             "params": {"n_slices": 1}})],
                tmp_path,
            )
            assert out[0]["ok"] and len(out[0]["trace_id"]) == 16
            events = obs.read_journal(tmp_path / "obs" / "journal.ndjson")
            spans = [e for e in events if e["event"] == "serve.request"]
            assert spans and spans[0]["trace_id"] == out[0]["trace_id"]
            assert spans[0]["status"] == "ok"
        finally:
            obs.configure(False)


class TestStdioProtocol:
    def test_serve_stdio_answers_then_drains(self, tmp_path):
        import io

        lines = [
            json.dumps({"id": 1, "kind": "dse_point", "params": {"n_slices": 1}}),
            json.dumps({"id": 2, "op": "stats"}),
        ]
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        srv = AsyncServer(dispatcher=LocalDispatcher("serial"), cache=ResultStore(tmp_path))
        run_async(serve_stdio(srv, stdin=stdin, stdout=stdout))
        out = [json.loads(l) for l in stdout.getvalue().splitlines()]
        by_id = {o["id"]: o for o in out}
        assert by_id[1]["ok"] and by_id[1]["value"]["n_slices"] == 1
        assert by_id[2]["stats"]["requests"] == 1
        assert srv.closed  # EOF closed the server gracefully

    def test_cli_serve_stdio(self, tmp_path, capsys, monkeypatch):
        import io

        from repro.runtime.cli import main

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(json.dumps(
                {"id": "c", "kind": "dse_point", "params": {"n_slices": 8}}
            ) + "\n"),
        )
        rc = main(["serve", "--stdio", "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 0
        response = json.loads(captured.out.splitlines()[0])
        assert response["ok"] and response["value"]["n_slices"] == 8
        assert "serve: 1 request(s)" in captured.err


# -- telemetry primitives ---------------------------------------------------


class TestTelemetry:
    def test_latency_recorder_percentiles(self):
        rec = LatencyRecorder(maxlen=100)
        for ms in range(1, 101):  # 1..100 ms
            rec.observe(ms / 1000)
        assert rec.percentile(50) == pytest.approx(0.050)
        assert rec.percentile(99) == pytest.approx(0.099)
        assert rec.percentile(100) == pytest.approx(0.100)
        summary = rec.summary()
        assert summary["count"] == 100
        assert summary["p50_s"] <= summary["p99_s"] <= summary["max_s"]

    def test_latency_recorder_window_and_validation(self):
        rec = LatencyRecorder(maxlen=4)
        for s in (1.0, 1.0, 1.0, 1.0, 0.002):  # old samples roll out
            rec.observe(s)
        assert rec.count == 5
        assert rec.percentile(0) == pytest.approx(0.002)
        with pytest.raises(ValueError):
            rec.percentile(101)
        with pytest.raises(ValueError):
            LatencyRecorder(maxlen=0)
        assert LatencyRecorder().summary()["p99_s"] == 0.0

    def test_latency_recorder_small_samples_use_nearest_rank(self):
        """Regression: the old round()-based rank under-reported mid
        percentiles at small n — p50 of five samples picked the 2nd
        order statistic (banker's rounding of 2.5), not the median."""
        rec = LatencyRecorder(maxlen=16)
        for s in (0.001, 0.002, 0.003, 0.004, 0.005):
            rec.observe(s)
        assert rec.percentile(50) == pytest.approx(0.003)  # the true median
        # Nearest-rank: ceil(q/100 * n) over the sorted window.
        assert rec.percentile(20) == pytest.approx(0.001)
        assert rec.percentile(60) == pytest.approx(0.003)
        assert rec.percentile(61) == pytest.approx(0.004)
        # At n < 100, p99's nearest rank is the max — by definition,
        # not by rounding accident.
        assert rec.percentile(99) == pytest.approx(0.005)
        qs = [rec.percentile(q) for q in range(0, 101, 5)]
        assert qs == sorted(qs)  # monotone in q
        pair = LatencyRecorder(maxlen=4)
        pair.observe(0.010)
        pair.observe(0.020)
        assert pair.percentile(50) == pytest.approx(0.010)
        assert pair.percentile(51) == pytest.approx(0.020)

    def test_snapshot_ratios(self):
        t = ServeTelemetry()
        t.requests = 4
        t.cache_hits = 3
        t.batches = 2
        t.dispatched = 6
        snap = t.snapshot()
        assert snap["cache_hit_ratio"] == pytest.approx(0.75)
        assert snap["mean_batch"] == pytest.approx(3.0)
        assert ServeTelemetry().snapshot()["cache_hit_ratio"] == 0.0

    def test_server_gauges_return_to_zero(self):
        async def body():
            async with AsyncServer(dispatcher=LocalDispatcher("serial")) as srv:
                await asyncio.gather(*(srv.submit(quick_spec(i)) for i in range(3)))
            assert srv.telemetry.in_flight == 0
            assert srv.telemetry.latency.count == 3
            snap = srv.stats()
            assert snap["requests"] == 3
            assert snap["latency"]["p99_s"] >= snap["latency"]["p50_s"]

        run_async(body())


# -- wire protocol v2: handshake, codes, shedding, credits ------------------


class TestWireV2:
    def _roundtrip(self, lines, tmp_path, n_responses=None, **server_kw):
        """Send ``lines`` over one TCP connection against a fresh
        server, return the decoded responses (completion order)."""

        async def body():
            kw = dict(dispatcher=LocalDispatcher("serial"),
                      cache=ResultStore(tmp_path), batch_window_s=0.005)
            kw.update(server_kw)
            srv = AsyncServer(**kw)
            tcp = await serve_tcp(srv)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for line in lines:
                writer.write(line.encode() + b"\n")
            await writer.drain()
            out = []
            for _ in range(n_responses if n_responses is not None else len(lines)):
                out.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            await srv.aclose()
            await srv.dispatcher.aclose()
            return out

        return run_async(body())

    def test_hello_negotiates_min_of_client_and_server(self, tmp_path):
        from repro.runtime import PROTO_VERSION

        out = self._roundtrip(
            [
                json.dumps({"id": "h1", "op": "hello", "proto": 1}),
                json.dumps({"id": "h2", "op": "hello", "proto": 2}),
                json.dumps({"id": "h99", "op": "hello", "proto": 99}),
            ],
            tmp_path,
        )
        by_id = {o["id"]: o for o in out}
        assert by_id["h1"]["ok"] and by_id["h1"]["proto"] == 1
        assert by_id["h2"]["ok"] and by_id["h2"]["proto"] == 2
        assert by_id["h99"]["ok"] and by_id["h99"]["proto"] == PROTO_VERSION
        assert by_id["h2"]["server_proto"] == PROTO_VERSION

    def test_invalid_hello_proto_is_bad_request(self, tmp_path):
        out = self._roundtrip(
            [json.dumps({"id": "h", "op": "hello", "proto": "two"})],
            tmp_path,
        )
        assert not out[0]["ok"]
        assert "bad request" in out[0]["error"]
        assert "code" not in out[0]  # the connection never left v1

    def test_v1_connection_errors_carry_no_code(self, tmp_path):
        out = self._roundtrip(
            ["not json", json.dumps({"id": "u", "kind": "nope"})],
            tmp_path,
        )
        for o in out:
            assert not o["ok"]
            assert "code" not in o

    def test_v2_bad_request_is_coded(self, tmp_path):
        out = self._roundtrip(
            [
                json.dumps({"id": "h", "op": "hello", "proto": 2}),
                json.dumps({"id": "u", "kind": "nope"}),
                json.dumps({"id": "o", "op": "bogus"}),
            ],
            tmp_path,
        )
        by_id = {o["id"]: o for o in out}
        assert by_id["u"]["code"] == "bad_request"
        assert by_id["o"]["code"] == "bad_request"

    def test_v2_runner_failure_is_backend_error(self, tmp_path, monkeypatch):
        from repro.runtime import serve as serve_mod

        def fail_factory(**params):
            return JobSpec(kind="t_fail", key=canonical_json(params))

        monkeypatch.setitem(serve_mod.WIRE_KINDS, "t_fail", fail_factory)
        out = self._roundtrip(
            [
                json.dumps({"id": "h", "op": "hello", "proto": 2}),
                json.dumps({"id": "f", "kind": "t_fail",
                            "params": {"tag": "wire"}}),
            ],
            tmp_path,
        )
        by_id = {o["id"]: o for o in out}
        failed = by_id["f"]
        assert not failed["ok"]
        assert "boom-wire" in failed["error"]
        assert failed["code"] == "backend_error"

    def test_v1_runner_failure_keeps_the_old_shape(self, tmp_path, monkeypatch):
        from repro.runtime import serve as serve_mod

        def fail_factory(**params):
            return JobSpec(kind="t_fail", key=canonical_json(params))

        monkeypatch.setitem(serve_mod.WIRE_KINDS, "t_fail", fail_factory)
        out = self._roundtrip(
            [json.dumps({"id": "f", "kind": "t_fail", "params": {"tag": "v1"}})],
            tmp_path,
        )
        assert not out[0]["ok"]
        assert "code" not in out[0]

    def test_shed_under_load_is_structured_and_lossless(self, tmp_path,
                                                        monkeypatch):
        """Fill the queue past --max-queue-depth: surplus requests get
        a structured ``overloaded`` reply, accepted ones still complete
        bit-identically, and no request is lost or answered twice."""
        from repro.runtime import serve as serve_mod

        def quick_factory(**params):
            return quick_spec(params["i"])

        monkeypatch.setitem(serve_mod.WIRE_KINDS, "t_quick", quick_factory)
        n = 8
        lines = [json.dumps({"id": "h", "op": "hello", "proto": 2})]
        lines += [json.dumps({"id": f"r{i}", "kind": "t_quick",
                              "params": {"i": i}}) for i in range(n)]
        out = self._roundtrip(lines, tmp_path, cache=None,
                              max_queue_depth=2, batch_window_s=0.05)
        by_id = {o["id"]: o for o in out}
        assert by_id["h"]["proto"] == 2
        answered = [by_id[f"r{i}"] for i in range(n)]
        assert len(answered) == n  # every request answered exactly once
        shed = [o for o in answered if not o["ok"]]
        accepted = [o for o in answered if o["ok"]]
        assert shed, "overload never engaged"
        for o in shed:
            assert o["code"] == "overloaded"
            assert "overloaded" in o["error"]
        for o in accepted:
            i = int(o["id"][1:])
            assert o["value"] == {"i": i}  # bit-identical to the runner

    def test_direct_submit_sheds_with_typed_error(self):
        from repro.runtime import ServerOverloadedError

        async def body():
            srv = AsyncServer(dispatcher=LocalDispatcher("serial"),
                              batch_window_s=0.2, max_queue_depth=1)
            tasks = [asyncio.ensure_future(srv.submit(quick_spec(i)))
                     for i in range(4)]
            done = await asyncio.gather(*tasks, return_exceptions=True)
            await srv.aclose()
            oks = [r for r in done if not isinstance(r, Exception)]
            sheds = [r for r in done if isinstance(r, ServerOverloadedError)]
            assert len(oks) + len(sheds) == 4
            assert sheds, "admission control never engaged"
            assert all(r.ok for r in oks)
            assert srv.telemetry.shed == len(sheds)
            assert srv.stats()["shed"] == len(sheds)

        run_async(body())

    def test_rejects_bad_admission_knobs(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            AsyncServer(max_queue_depth=0)
        with pytest.raises(ValueError, match="conn_credits"):
            AsyncServer(conn_credits=0)


class TestConnCredits:
    def test_pump_stalls_at_the_credit_window(self):
        """With conn_credits=1, the pump must not start answer #2 while
        answer #1 is in flight — backpressure, proved by a gate."""
        from repro.runtime.serve import _serve_lines

        async def body():
            gate = threading.Event()
            from repro.runtime import serve as serve_mod
            spec = JobSpec(kind="t_gate", key=canonical_json({"g": 1}),
                           payload={"event": gate})
            srv = AsyncServer(dispatcher=LocalDispatcher("thread"),
                              batch_window_s=0.0, conn_credits=1)
            # Drive the pump directly with a scripted transport; the
            # gate spec goes through a patched wire factory.
            serve_mod.WIRE_KINDS["t_gate_cred"] = lambda **p: spec
            try:
                lines = [
                    json.dumps({"id": "g", "kind": "t_gate_cred"}),
                    json.dumps({"id": "p", "op": "ping"}),
                    "",  # EOF
                ]
                sent = []

                async def readline():
                    return lines.pop(0)

                async def send(obj):
                    sent.append(obj)

                pump = asyncio.ensure_future(_serve_lines(srv, readline, send))
                await asyncio.sleep(0.2)
                # The ping is cheap, but the window is full: no answer.
                assert sent == []
                gate.set()
                await asyncio.wait_for(pump, 10)
                assert [o["id"] for o in sent] == ["g", "p"]
                assert sent[0]["ok"] and sent[1]["pong"]
            finally:
                serve_mod.WIRE_KINDS.pop("t_gate_cred", None)
                await srv.aclose()

        run_async(body())


class TestQueueDepthConsolidation:
    def test_stats_and_dashboard_read_the_same_gauge(self):
        """Regression (the stats/top split-brain): after a burst drains,
        the ``repro_serve_queue_depth`` gauge, the telemetry struct and
        the ``stats`` op must all agree on zero — the batcher used to
        update only the telemetry copy, leaving the gauge stale."""
        from repro.runtime import get_registry

        async def body():
            srv = AsyncServer(dispatcher=LocalDispatcher("serial"),
                              batch_window_s=0.0)
            await asyncio.gather(*(srv.submit(quick_spec(i)) for i in range(4)))
            await srv.aclose()
            gauge = get_registry()._metrics["repro_serve_queue_depth"]
            assert gauge.value() == 0
            assert srv.telemetry.queue_depth == 0
            assert srv.stats()["queue_depth"] == 0

        run_async(body())

    def test_stats_reports_from_the_gauge_not_the_struct(self):
        async def body():
            srv = AsyncServer(dispatcher=LocalDispatcher("serial"))
            # Desynchronise the struct on purpose: stats must answer
            # from the gauge, the dashboard's source of truth.
            srv.telemetry.queue_depth = 99
            srv._g_queue_depth.set(3)
            assert srv.stats()["queue_depth"] == 3
            await srv.aclose()

        run_async(body())
