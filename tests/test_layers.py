"""Tests for event layers: im2col plumbing, conv/pool/dense forward+backward."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn import (
    EConv2d,
    EDense,
    EFlatten,
    ESumPool2d,
    LIFDynamics,
    LIFParams,
    QuantSpec,
    col2im,
    im2col,
)


class IdentityDynamics:
    """Test double: currents pass through, gradients pass through."""

    def forward(self, currents):
        return currents, {}

    def backward(self, grad, cache):
        return grad


class TestIm2Col:
    def test_known_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols, (ho, wo) = im2col(x, kernel=3, stride=1, padding=0)
        assert (ho, wo) == (2, 2)
        assert cols.shape == (1, 9, 4)
        # first column = top-left 3x3 patch, row-major
        assert list(cols[0, :, 0]) == [0, 1, 2, 4, 5, 6, 8, 9, 10]

    def test_padding_adds_zeros(self):
        x = np.ones((1, 1, 2, 2))
        cols, (ho, wo) = im2col(x, kernel=3, stride=1, padding=1)
        assert (ho, wo) == (2, 2)
        assert cols[0, 0, 0] == 0.0  # padded corner

    def test_stride(self):
        x = np.arange(25, dtype=np.float64).reshape(1, 1, 5, 5)
        cols, (ho, wo) = im2col(x, kernel=3, stride=2, padding=0)
        assert (ho, wo) == (2, 2)

    def test_collapsing_output_raises(self):
        with pytest.raises(ValueError, match="collapses"):
            im2col(np.zeros((1, 1, 2, 2)), kernel=3, stride=1, padding=0)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, data):
        """<im2col(x), c> == <x, col2im(c)> — the defining adjoint identity."""
        h = data.draw(st.integers(3, 8))
        w = data.draw(st.integers(3, 8))
        k = data.draw(st.integers(1, 3))
        stride = data.draw(st.integers(1, 2))
        pad = data.draw(st.integers(0, 1))
        seed = data.draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 3, h, w))
        try:
            cols, _ = im2col(x, k, stride, pad)
        except ValueError:
            return  # degenerate geometry, nothing to check
        c = rng.normal(size=cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * col2im(c, x.shape, k, stride, pad)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestEConv2d:
    def test_forward_shape(self):
        layer = EConv2d(2, 4, kernel=3, padding=1)
        x = (np.random.default_rng(0).random((5, 2, 2, 8, 8)) < 0.2).astype(float)
        out = layer.forward(x)
        assert out.shape == (5, 2, 4, 8, 8)
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_rejects_wrong_rank_and_channels(self):
        layer = EConv2d(2, 4)
        with pytest.raises(ValueError, match="T, B, C, H, W"):
            layer.forward(np.zeros((2, 2, 8, 8)))
        with pytest.raises(ValueError, match="channels"):
            layer.forward(np.zeros((1, 1, 3, 8, 8)))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="geometry"):
            EConv2d(0, 4)
        with pytest.raises(ValueError, match="geometry"):
            EConv2d(2, 4, stride=0)

    def test_weight_gradient_exact_with_identity_dynamics(self):
        """With pass-through dynamics the layer is linear; check dW exactly."""
        rng = np.random.default_rng(1)
        layer = EConv2d(2, 3, kernel=3, padding=1, dynamics=IdentityDynamics(), seed=1)
        x = rng.normal(size=(2, 2, 2, 5, 5))
        out = layer.forward(x)
        grad_out = rng.normal(size=out.shape)
        layer.backward(grad_out)
        # numerical check on a few weight entries
        eps = 1e-6
        for idx in [(0, 0), (1, 5), (2, 17)]:
            w0 = layer.weight.value[idx]
            layer.weight.value[idx] = w0 + eps
            up = float((layer.forward(x) * grad_out).sum())
            layer.weight.value[idx] = w0 - eps
            down = float((layer.forward(x) * grad_out).sum())
            layer.weight.value[idx] = w0
            numeric = (up - down) / (2 * eps)
            assert layer.weight.grad[idx] == pytest.approx(numeric, rel=1e-5, abs=1e-7)

    def test_input_gradient_exact_with_identity_dynamics(self):
        rng = np.random.default_rng(2)
        layer = EConv2d(1, 2, kernel=3, padding=1, dynamics=IdentityDynamics(), seed=2)
        x = rng.normal(size=(1, 1, 1, 4, 4))
        out = layer.forward(x)
        grad_out = rng.normal(size=out.shape)
        dx = layer.backward(grad_out)
        eps = 1e-6
        for idx in [(0, 0, 0, 1, 2), (0, 0, 0, 3, 3)]:
            x0 = x[idx]
            x[idx] = x0 + eps
            up = float((layer.forward(x) * grad_out).sum())
            x[idx] = x0 - eps
            down = float((layer.forward(x) * grad_out).sum())
            x[idx] = x0
            numeric = (up - down) / (2 * eps)
            assert dx[idx] == pytest.approx(numeric, rel=1e-5, abs=1e-7)

    def test_quantised_weights_lie_on_grid(self):
        layer = EConv2d(2, 3, quant=QuantSpec(4), seed=3)
        w_eff, mask = layer.effective_weight()
        from repro.snn import weight_scale

        scale = weight_scale(layer.weight.value, QuantSpec(4))
        grid = w_eff / scale
        assert np.allclose(grid, np.round(grid))
        assert mask is not None

    def test_output_shape_helper(self):
        layer = EConv2d(2, 8, kernel=3, padding=1)
        assert layer.output_shape((16, 16)) == (8, 16, 16)

    def test_spikes_recorded_for_analysis(self):
        layer = EConv2d(1, 1, kernel=3, padding=1)
        x = np.ones((2, 1, 1, 4, 4))
        layer.forward(x)
        assert layer.last_spikes is not None


class TestESumPool2d:
    def test_sum_pooling_arithmetic(self):
        layer = ESumPool2d(2, pool_weight=0.25, dynamics=IdentityDynamics())
        x = np.ones((1, 1, 1, 4, 4))
        out = layer.forward(x)
        assert out.shape == (1, 1, 1, 2, 2)
        assert np.allclose(out, 1.0)  # 4 ones * 0.25

    def test_rejects_non_tiling_plane(self):
        layer = ESumPool2d(2)
        with pytest.raises(ValueError, match="tile"):
            layer.forward(np.zeros((1, 1, 1, 5, 4)))

    def test_backward_distributes_gradient(self):
        layer = ESumPool2d(2, pool_weight=0.5, dynamics=IdentityDynamics())
        x = np.zeros((1, 1, 1, 4, 4))
        layer.forward(x)
        grad_out = np.ones((1, 1, 1, 2, 2))
        dx = layer.backward(grad_out)
        assert dx.shape == x.shape
        assert np.allclose(dx, 0.5)

    def test_spiking_pool_emits_binary(self):
        layer = ESumPool2d(2, dynamics=LIFDynamics(LIFParams(threshold=1.0)))
        x = np.ones((3, 1, 2, 4, 4))
        out = layer.forward(x)
        assert set(np.unique(out)).issubset({0.0, 1.0})

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            ESumPool2d(0)


class TestEFlattenAndEDense:
    def test_flatten_roundtrip(self):
        layer = EFlatten()
        x = np.random.default_rng(0).random((2, 3, 4, 5, 6))
        out = layer.forward(x)
        assert out.shape == (2, 3, 120)
        assert np.array_equal(layer.backward(out), x)

    def test_dense_forward_shape(self):
        layer = EDense(10, 4)
        x = (np.random.default_rng(0).random((5, 2, 10)) < 0.3).astype(float)
        out = layer.forward(x)
        assert out.shape == (5, 2, 4)

    def test_dense_validates_features(self):
        layer = EDense(10, 4)
        with pytest.raises(ValueError, match="features"):
            layer.forward(np.zeros((2, 2, 9)))
        with pytest.raises(ValueError, match="T, B, F"):
            layer.forward(np.zeros((2, 9)))

    def test_readout_mode_returns_currents(self):
        layer = EDense(3, 2, readout=True, seed=0)
        x = np.ones((2, 1, 3))
        out = layer.forward(x)
        expected = x @ layer.weight.value.T
        assert np.allclose(out, expected)

    def test_readout_gradient_exact(self):
        rng = np.random.default_rng(4)
        layer = EDense(6, 3, readout=True, seed=4)
        x = rng.normal(size=(4, 2, 6))
        out = layer.forward(x)
        grad_out = rng.normal(size=out.shape)
        dx = layer.backward(grad_out)
        assert np.allclose(dx, grad_out @ layer.weight.value)
        expected_dw = np.einsum("tbo,tbf->of", grad_out, x)
        assert np.allclose(layer.weight.grad, expected_dw)

    def test_quantised_dense_grid(self):
        layer = EDense(8, 4, quant=QuantSpec(4), seed=5)
        w_eff, _ = layer.effective_weight()
        from repro.snn import weight_scale

        scale = weight_scale(layer.weight.value, QuantSpec(4))
        assert np.allclose(w_eff / scale, np.round(w_eff / scale))

    def test_parameters_exposed(self):
        assert len(EDense(3, 2).parameters()) == 1
        assert len(EConv2d(1, 1).parameters()) == 1
        assert EFlatten().parameters() == []
        assert ESumPool2d(2).parameters() == []
