"""CLI surface: ``python -m repro sweep|eval|cache`` and ``--version``."""

import json

import pytest

from repro import __version__
from repro.runtime.cli import main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_command_is_required():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2


def test_sweep_prints_table_and_stats(tmp_path, capsys):
    argv = ["sweep", "--slices", "1,8", "--cache-dir", str(tmp_path), "--quiet"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "eff [TSOP/s/W]" in out
    assert "2 computed" in out
    # Second invocation is served from the cache.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 cache hit(s), 0 computed" in out
    assert "hit rate 100%" in out


def test_sweep_csv_output(capsys):
    assert main(["sweep", "--slices", "1,8", "--no-cache", "--csv", "--quiet"]) == 0
    lines = [
        l for l in capsys.readouterr().out.splitlines()
        if "," in l and not l.startswith("run:")
    ]
    assert lines[0].startswith("slices,")
    assert len(lines) == 3


def test_sweep_rejects_bad_axis_values():
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--slices", "1,banana", "--no-cache", "--quiet"])
    assert exc.value.code == 2


def test_nonpositive_workers_rejected():
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--slices", "8", "--workers", "0", "--no-cache", "--quiet"])
    assert exc.value.code == 2


def test_domain_errors_exit_cleanly(capsys):
    assert main(["sweep", "--slices", "0,8", "--no-cache", "--quiet"]) == 2
    assert "n_slices must be positive" in capsys.readouterr().err
    assert main(["sweep", "--slices", "8", "--cache-dir", "/dev/null/x", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err


def test_eval_runs_tiny_dataset(capsys):
    argv = [
        "eval", "--size", "16", "--steps", "6", "--per-class", "1",
        "--max-samples", "3", "--no-cache", "--quiet",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "hardware accuracy" in out
    assert "3 job(s)" in out


def test_eval_uses_cache_on_second_run(tmp_path, capsys):
    argv = [
        "eval", "--size", "16", "--steps", "6", "--per-class", "1",
        "--max-samples", "2", "--cache-dir", str(tmp_path), "--quiet",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    assert "2 cache hit(s), 0 computed" in capsys.readouterr().out


def test_cache_stats_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path)
    main(["sweep", "--slices", "1,8", "--cache-dir", cache_dir, "--quiet"])
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "2 entries" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 2" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "0 entries" in capsys.readouterr().out


def test_backend_flag_validates_against_registry_at_parse_time(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--backend", "warp-drive", "--no-cache", "--quiet"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "unknown backend 'warp-drive'" in err
    assert "cluster" in err  # the live registry renders the name list


def test_backend_flag_accepts_late_registered_backends(capsys):
    from repro.runtime import SerialBackend, register_backend
    from repro.runtime.backends import _BACKENDS

    @register_backend("late-bird")
    class LateBird(SerialBackend):
        """Registered after module import: must still parse."""
        name = "late-bird"

    try:
        argv = ["sweep", "--slices", "1", "--backend", "late-bird",
                "--no-cache", "--quiet", "--csv"]
        assert main(argv) == 0
    finally:
        _BACKENDS.pop("late-bird", None)


def test_sweep_cluster_backend_matches_serial_csv(tmp_path, capsys):
    base = ["sweep", "--slices", "1,8", "--quiet", "--csv", "--no-cache"]
    assert main(base) == 0
    serial_csv = capsys.readouterr().out
    assert main(base + ["--backend", "cluster", "--workers", "2"]) == 0
    assert capsys.readouterr().out == serial_csv


def test_sweep_shards_compose_in_one_store(tmp_path, capsys):
    cache_dir = str(tmp_path)
    base = ["sweep", "--slices", "1,2,4,8", "--cache-dir", cache_dir, "--quiet"]
    assert main(base + ["--shards", "3"]) == 0
    sharded_out = capsys.readouterr().out
    assert "4 job(s)" in sharded_out
    # The whole-grid rerun replays the shard runs' entries: 100% hits.
    assert main(base) == 0
    out = capsys.readouterr().out
    assert "4 cache hit(s), 0 computed" in out
    assert "hit rate 100%" in out


def test_cache_stats_detail_lists_entries(tmp_path, capsys):
    cache_dir = str(tmp_path)
    argv = ["sweep", "--slices", "1,8", "--cache-dir", cache_dir, "--quiet"]
    main(argv)
    main(argv)  # second run: two cache hits to count
    capsys.readouterr()
    assert main(["cache", "stats", "--detail", "--top", "1",
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entry ages:" in out
    assert "top 1 of 2 entries" in out
    assert "dse_point" in out
    assert "2 recorded hit(s)" in out


def test_worker_drains_a_spool(tmp_path, capsys):
    from repro.runtime import Broker, dse_point_job, run_jobs

    spool = tmp_path / "spool"
    broker = Broker(spool)
    jobs = [dse_point_job(n) for n in (1, 2, 4, 8)]
    broker.submit(jobs, chunk_size=2)
    assert main(["worker", "--spool", str(spool), "--drain",
                 "--cache-dir", str(tmp_path / "store")]) == 0
    err = capsys.readouterr().err
    assert "2 chunk(s) published" in err
    results = broker.collect(timeout=30)
    reference = run_jobs(jobs, executor="serial")
    assert [r.value for r in results] == [r.value for r in reference.results]
    # Write-through happened: a replay against the store is all hits.
    from repro.runtime import ResultStore

    replay = run_jobs(jobs, executor="serial",
                      cache=ResultStore(tmp_path / "store"))
    assert replay.stats.hits == len(jobs)


def test_worker_requires_spool():
    with pytest.raises(SystemExit) as exc:
        main(["worker", "--drain"])
    assert exc.value.code == 2


def test_sweep_spool_flag_feeds_external_workers(tmp_path, capsys):
    spool = tmp_path / "spool"
    argv = ["sweep", "--slices", "1,8", "--backend", "cluster", "--workers",
            "2", "--spool", str(spool), "--no-cache", "--quiet", "--csv"]
    assert main(argv) == 0
    assert (spool / "chunks").is_dir()  # the shared queue was used
    assert main(["sweep", "--slices", "1,8", "--no-cache", "--quiet",
                 "--csv"]) == 0
    # Byte-identical CSV between the spooled and in-process runs.
    lines = capsys.readouterr().out.splitlines()
    half = len(lines) // 2
    assert lines[:half] == lines[half:]


def test_spool_flag_rejected_for_non_cluster_backends(tmp_path, capsys):
    assert main(["sweep", "--slices", "1", "--backend", "serial", "--spool",
                 str(tmp_path), "--no-cache", "--quiet"]) == 2
    assert "--spool only applies to --backend cluster" in capsys.readouterr().err


def test_metrics_and_top_need_an_obs_dir(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
    from repro.runtime import obs

    obs.configure(False)
    try:
        assert main(["metrics"]) == 2
        assert "--obs-dir" in capsys.readouterr().err
        assert main(["top", "--once"]) == 2
        assert "--obs-dir" in capsys.readouterr().err
    finally:
        obs.configure(False)


def test_top_survives_truncated_and_rotated_journal(tmp_path, capsys):
    """``repro top`` tails the journal through truncation and rotation
    (the dashboard used to keep a stale byte offset and go blind)."""
    from repro.runtime import obs

    obs_dir = tmp_path / "obs"
    obs.set_registry(obs.MetricsRegistry())
    try:
        assert main(["sweep", "--slices", "1,8", "--cache-dir",
                     str(tmp_path / "cache"), "--quiet",
                     "--obs-dir", str(obs_dir)]) == 0
        capsys.readouterr()
        assert main(["top", "--once", "--obs-dir", str(obs_dir)]) == 0
        assert "queue depth" in capsys.readouterr().out

        journal = obs_dir / "journal.ndjson"
        journal.write_text("")  # operator truncates in place
        assert main(["top", "--once", "--obs-dir", str(obs_dir)]) == 0
        assert "queue depth" in capsys.readouterr().out

        journal.rename(obs_dir / "journal.ndjson.1")  # logrotate
        assert main(["sweep", "--slices", "1,8", "--cache-dir",
                     str(tmp_path / "cache"), "--quiet",
                     "--obs-dir", str(obs_dir)]) == 0
        capsys.readouterr()
        assert main(["top", "--once", "--obs-dir", str(obs_dir)]) == 0
        assert "queue depth" in capsys.readouterr().out
    finally:
        obs.configure(False)
        obs.set_registry(obs.MetricsRegistry())


def test_sweep_then_metrics_and_top(tmp_path, capsys):
    from repro.runtime import obs

    obs_dir = tmp_path / "obs"
    # Earlier in-process main() calls accumulated into the global
    # registry; start from a clean one so the counts below are exact.
    obs.set_registry(obs.MetricsRegistry())
    try:
        assert main(["sweep", "--slices", "1,8", "--cache-dir",
                     str(tmp_path / "cache"), "--quiet",
                     "--obs-dir", str(obs_dir)]) == 0
        assert (obs_dir / "journal.ndjson").is_file()
        capsys.readouterr()

        assert main(["metrics", "--obs-dir", str(obs_dir)]) == 0
        human = capsys.readouterr().out
        assert "repro_jobs_total" in human

        assert main(["metrics", "--json", "--obs-dir", str(obs_dir)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        series = doc["metrics"]["repro_jobs_total"]["series"]
        assert sum(s["value"] for s in series) == 2  # two design points

        assert main(["metrics", "--prom", "--obs-dir", str(obs_dir)]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_jobs_total counter" in prom

        assert main(["top", "--once", "--obs-dir", str(obs_dir)]) == 0
        frame = capsys.readouterr().out
        assert "queue depth" in frame and "cache hit rate" in frame
        assert "\x1b[" not in frame  # --once frames stay grep-able
    finally:
        obs.configure(False)
        obs.set_registry(obs.MetricsRegistry())

def test_metrics_p99_reports_overflow_direction(tmp_path, capsys):
    """Fleet-wide p99 says ``p99 > bound`` when the rank lands in the
    +Inf bucket instead of pretending the last finite bound is an upper
    bound (it is a *lower* bound there)."""
    from repro.runtime import obs

    obs_dir = tmp_path / "obs"
    obs.set_registry(obs.MetricsRegistry())
    try:
        hist = obs.get_registry().histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(50.0)  # +Inf bucket: p99 is beyond every bound
        obs.flush_metrics(obs_dir)
        assert main(["metrics", "--obs-dir", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "p99 > 1000.00 ms" in out

        obs.set_registry(obs.MetricsRegistry())
        hist = obs.get_registry().histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        obs.flush_metrics(obs_dir)
        assert main(["metrics", "--obs-dir", str(obs_dir)]) == 0
        assert "p99 <= 100.00 ms" in capsys.readouterr().out
    finally:
        obs.configure(False)
        obs.set_registry(obs.MetricsRegistry())
