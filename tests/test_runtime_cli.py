"""CLI surface: ``python -m repro sweep|eval|cache`` and ``--version``."""

import pytest

from repro import __version__
from repro.runtime.cli import main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_command_is_required():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2


def test_sweep_prints_table_and_stats(tmp_path, capsys):
    argv = ["sweep", "--slices", "1,8", "--cache-dir", str(tmp_path), "--quiet"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "eff [TSOP/s/W]" in out
    assert "2 computed" in out
    # Second invocation is served from the cache.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 cache hit(s), 0 computed" in out
    assert "hit rate 100%" in out


def test_sweep_csv_output(capsys):
    assert main(["sweep", "--slices", "1,8", "--no-cache", "--csv", "--quiet"]) == 0
    lines = [
        l for l in capsys.readouterr().out.splitlines()
        if "," in l and not l.startswith("run:")
    ]
    assert lines[0].startswith("slices,")
    assert len(lines) == 3


def test_sweep_rejects_bad_axis_values():
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--slices", "1,banana", "--no-cache", "--quiet"])
    assert exc.value.code == 2


def test_nonpositive_workers_rejected():
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--slices", "8", "--workers", "0", "--no-cache", "--quiet"])
    assert exc.value.code == 2


def test_domain_errors_exit_cleanly(capsys):
    assert main(["sweep", "--slices", "0,8", "--no-cache", "--quiet"]) == 2
    assert "n_slices must be positive" in capsys.readouterr().err
    assert main(["sweep", "--slices", "8", "--cache-dir", "/dev/null/x", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err


def test_eval_runs_tiny_dataset(capsys):
    argv = [
        "eval", "--size", "16", "--steps", "6", "--per-class", "1",
        "--max-samples", "3", "--no-cache", "--quiet",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "hardware accuracy" in out
    assert "3 job(s)" in out


def test_eval_uses_cache_on_second_run(tmp_path, capsys):
    argv = [
        "eval", "--size", "16", "--steps", "6", "--per-class", "1",
        "--max-samples", "2", "--cache-dir", str(tmp_path), "--quiet",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    assert "2 cache hit(s), 0 computed" in capsys.readouterr().out


def test_cache_stats_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path)
    main(["sweep", "--slices", "1,8", "--cache-dir", cache_dir, "--quiet"])
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "2 entries" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 2" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "0 entries" in capsys.readouterr().out
