"""Tests for activity profiling, metrics, table rendering and sweeps."""

import numpy as np
import pytest

from repro.analysis import (
    ComparisonRow,
    accuracy,
    confusion_matrix,
    dataset_activity_range,
    profile_network,
    proportionality_fit,
    render_comparison,
    render_table,
    sweep_activity,
    to_csv,
)
from repro.events import EventDataset, EventSample, EventStream
from repro.hw import LayerGeometry, LayerKind, LayerProgram, SNEConfig
from repro.snn import build_small_network


class TestAccuracyAndConfusion:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        m = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
        assert m[0, 0] == 1 and m[1, 1] == 1 and m[0, 1] == 1
        assert m.sum() == 3

    def test_confusion_diagonal_equals_accuracy(self):
        preds = np.array([0, 1, 2, 2, 1])
        labels = np.array([0, 1, 2, 1, 1])
        m = confusion_matrix(preds, labels, 3)
        assert np.trace(m) / m.sum() == pytest.approx(accuracy(preds, labels))

    def test_confusion_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), 2)


class TestProportionalityFit:
    def test_perfect_line(self):
        events = np.array([10.0, 20, 30, 40])
        fit = proportionality_fit(events, 48 * events)
        assert fit.slope == pytest.approx(48.0)
        assert fit.intercept == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fixed_offset_detected(self):
        events = np.array([10.0, 20, 30])
        fit = proportionality_fit(events, 5 * events + 100)
        assert fit.intercept == pytest.approx(100.0)
        assert fit.intercept_fraction == pytest.approx(100 / 250)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            proportionality_fit(np.array([1.0]), np.array([2.0]))

    def test_constant_cost_r2_one(self):
        fit = proportionality_fit(np.array([1.0, 2, 3]), np.array([5.0, 5, 5]))
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.slope == pytest.approx(0.0)


class TestTables:
    def test_render_table_contains_cells(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", None]])
        assert "| a" in text and "2.5" in text and "-" in text

    def test_render_table_validates_widths(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])
        with pytest.raises(ValueError):
            render_table([], [])

    def test_comparison_relative_error(self):
        row = ComparisonRow("perf", paper=100.0, measured=103.0, unit="GOP/s")
        assert row.relative_error == pytest.approx(0.03)

    def test_comparison_non_numeric(self):
        assert ComparisonRow("name", "SNE", "SNE").relative_error is None

    def test_render_comparison(self):
        text = render_comparison(
            [ComparisonRow("e/sop", 0.221, 0.2205, "pJ")], title="fig5b"
        )
        assert "fig5b" in text and "0.2%" in text

    def test_to_csv(self):
        csv = to_csv(["x", "y"], [[1, 2], [3, 4]])
        assert csv.splitlines() == ["x,y", "1,2", "3,4"]


class TestActivityProfile:
    def make_inputs(self, density=0.1, seed=0):
        rng = np.random.default_rng(seed)
        return (rng.random((5, 1, 2, 8, 8)) < density).astype(np.float64)

    def test_profile_counts_layers_with_spikes(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        profile = profile_network(net, self.make_inputs())
        assert len(profile.layers) >= 4
        assert profile.input_events > 0
        assert 0.0 <= profile.network_activity <= 1.0

    def test_events_consumed_excludes_final_output(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        profile = profile_network(net, self.make_inputs())
        expected = profile.input_events + sum(l.events for l in profile.layers[:-1])
        assert profile.events_consumed == expected

    def test_dataset_activity_range_ordering(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        rng = np.random.default_rng(1)
        samples = []
        for density in (0.02, 0.3):
            dense = (rng.random((5, 2, 8, 8)) < density).astype(np.uint8)
            samples.append(EventSample(EventStream.from_dense(dense), 0))
        ds = EventDataset(samples, n_classes=1)
        low, high = dataset_activity_range(net, ds)
        assert low.events_consumed <= high.events_consumed

    def test_dataset_activity_range_empty(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        with pytest.raises(ValueError):
            dataset_activity_range(net, EventDataset([], 1))


class TestActivitySweep:
    def make_program(self):
        g = LayerGeometry(LayerKind.CONV, 2, 8, 8, 4, 8, 8, kernel=3, padding=1)
        w = np.random.default_rng(0).integers(-2, 3, (4, 2, 3, 3))
        return LayerProgram(g, w, threshold=100, leak=0)  # silent outputs

    def make_stream(self, density=0.3):
        rng = np.random.default_rng(1)
        return EventStream.from_dense(
            (rng.random((10, 2, 8, 8)) < density).astype(np.uint8)
        )

    def test_sweep_cycles_proportional_to_events(self):
        sweep = sweep_activity(
            self.make_program(),
            self.make_stream(),
            activities=[0.02, 0.05, 0.1, 0.2],
            config=SNEConfig(n_slices=1),
        )
        assert sweep.cycles_fit.r_squared > 0.999
        assert sweep.cycles_fit.slope == pytest.approx(48, rel=0.05)
        # fixed bracket (reset + fire scans) is small relative to the top point
        assert sweep.cycles_fit.intercept_fraction < 0.3

    def test_sweep_energy_monotone(self):
        sweep = sweep_activity(
            self.make_program(),
            self.make_stream(),
            activities=[0.02, 0.1, 0.2],
            config=SNEConfig(n_slices=1),
        )
        energies = [p.sne_energy_uj for p in sweep.points]
        assert energies == sorted(energies)

    def test_dense_energy_is_flat(self):
        sweep = sweep_activity(
            self.make_program(),
            self.make_stream(),
            activities=[0.02, 0.2],
            config=SNEConfig(n_slices=1),
        )
        assert sweep.points[0].dense_energy_uj == sweep.points[1].dense_energy_uj

    def test_sweep_validation(self):
        with pytest.raises(ValueError, match="below"):
            sweep_activity(
                self.make_program(), self.make_stream(density=0.01), activities=[0.5]
            )
        with pytest.raises(ValueError, match="at least one"):
            sweep_activity(self.make_program(), self.make_stream(), activities=[])
