"""Tests for Sequential networks, the trainer, and the Fig. 6 topology."""

import numpy as np
import pytest

from repro.events import EventDataset, EventSample, EventStream
from repro.snn import (
    FIG6_PAPER,
    Adam,
    Fig6Spec,
    Parameter,
    Sequential,
    SLAYER_SRM,
    SNE_LIF_4B,
    TrainConfig,
    Trainer,
    build_fig6_network,
    build_pair,
    build_small_network,
    evaluate,
    softmax_cross_entropy,
)


def toy_dataset(n_per_class=8, size=8, n_steps=6, seed=0):
    """Two trivially separable classes: events on the left vs right half."""
    rng = np.random.default_rng(seed)
    samples = []
    for label in (0, 1):
        for _ in range(n_per_class):
            dense = np.zeros((n_steps, 2, size, size), dtype=np.uint8)
            cols = rng.integers(0, size // 2, 12) + (label * size // 2)
            rows = rng.integers(0, size, 12)
            ts = rng.integers(0, n_steps, 12)
            chs = rng.integers(0, 2, 12)
            dense[ts, chs, rows, cols] = 1
            samples.append(EventSample(EventStream.from_dense(dense), label))
    return EventDataset(samples, n_classes=2, name="toy")


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_gradient_sums_to_zero_per_row(self):
        logits = np.random.default_rng(0).normal(size=(4, 3))
        _, grad = softmax_cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_numerical_gradient(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 3, 0])
        loss, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for idx in [(0, 1), (2, 2)]:
            up = logits.copy()
            up[idx] += eps
            down = logits.copy()
            down[idx] -= eps
            numeric = (
                softmax_cross_entropy(up, labels)[0]
                - softmax_cross_entropy(down, labels)[0]
            ) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestAdam:
    def test_minimises_quadratic(self):
        p = Parameter(np.array([4.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.zero_grad()
            p.grad += 2 * p.value  # d/dx x^2
            opt.step()
        assert np.abs(p.value).max() < 1e-2

    def test_grad_clip(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1, grad_clip=1.0)
        p.grad += np.array([1e6])
        opt.step()  # must not explode
        assert abs(p.value[0]) < 1.0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)


class TestSequential:
    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_predict_shapes(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        x = (np.random.default_rng(0).random((4, 2, 2, 8, 8)) < 0.2).astype(float)
        out = net.forward(x)
        assert out.shape == (4, 2, 3)
        assert net.predict(x).shape == (2,)

    def test_layer_activities_after_forward(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        x = np.ones((4, 1, 2, 8, 8))
        net.forward(x)
        acts = net.layer_activities()
        assert len(acts) == len(net.layers)
        assert all(0.0 <= a <= 1.0 for a in acts)

    def test_save_load_roundtrip(self, tmp_path):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        path = str(tmp_path / "weights.npz")
        net.save(path)
        net2 = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3, seed=99)
        net2.load(path)
        for a, b in zip(net.parameters(), net2.parameters()):
            assert np.array_equal(a.value, b.value)

    def test_load_rejects_wrong_keys(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        with pytest.raises(ValueError, match="keys"):
            net.load_state_dict({"bogus": np.zeros(1)})

    def test_load_rejects_wrong_shape(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state)

    def test_zero_grad(self):
        net = build_small_network(input_size=8, channels=4, hidden=16, n_classes=3)
        x = np.ones((2, 1, 2, 8, 8))
        out = net.forward(x)
        net.backward(np.ones_like(out))
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.parameters())


class TestTrainer:
    def test_training_reduces_loss_and_learns_toy_task(self):
        data = toy_dataset(n_per_class=10)
        train, _, test = data.split((0.7, 0.0, 0.3), seed=1)
        net = build_small_network(
            input_size=8, channels=4, hidden=24, n_classes=2, weight_bits=None
        )
        trainer = Trainer(net, TrainConfig(epochs=6, batch_size=7, lr=3e-3, seed=0))
        history = trainer.fit(train)
        assert history.train_loss[-1] < history.train_loss[0]
        assert evaluate(net, test) >= 0.6  # clearly above the 0.5 chance level

    def test_quantised_network_also_learns(self):
        data = toy_dataset(n_per_class=10, seed=3)
        train, _, test = data.split((0.7, 0.0, 0.3), seed=1)
        net = build_small_network(
            input_size=8, channels=4, hidden=24, n_classes=2, weight_bits=4
        )
        trainer = Trainer(net, TrainConfig(epochs=6, batch_size=7, lr=3e-3, seed=0))
        trainer.fit(train)
        assert evaluate(net, test) >= 0.6

    def test_validation_history_recorded(self):
        data = toy_dataset(n_per_class=6)
        train, val, _ = data.split((0.6, 0.2, 0.2), seed=0)
        net = build_small_network(input_size=8, channels=3, hidden=12, n_classes=2)
        trainer = Trainer(net, TrainConfig(epochs=2, batch_size=4))
        history = trainer.fit(train, validation=val)
        assert len(history.val_accuracy) == 2

    def test_evaluate_rejects_empty(self):
        net = build_small_network(input_size=8, channels=3, hidden=12, n_classes=2)
        with pytest.raises(ValueError):
            evaluate(net, EventDataset([], 2))


class TestFig6Topology:
    def test_paper_geometry(self):
        spec = FIG6_PAPER
        assert spec.fc_plane == 9
        assert spec.fc_inputs == 9 * 9 * 32  # 2592 as printed in Fig. 6

    def test_rejects_non_tiling_input(self):
        with pytest.raises(ValueError, match="tile"):
            Fig6Spec(input_size=100)

    def test_scaled_variant(self):
        small = FIG6_PAPER.scaled(3)
        assert small.input_size == 48 and small.fc_plane == 3

    def test_forward_pass_small_variant(self):
        spec = Fig6Spec(input_size=32, conv_channels=4, hidden=16)
        net = build_fig6_network(spec, weight_bits=4)
        x = (np.random.default_rng(0).random((3, 1, 2, 32, 32)) < 0.05).astype(float)
        out = net.forward(x)
        assert out.shape == (3, 1, 16) or out.shape == (3, 1, spec.n_classes)

    def test_srm_and_lif_pairs_share_topology(self):
        srm_net, lif_net = build_pair(small=True, input_size=8, channels=3, hidden=12)
        assert len(srm_net.layers) == len(lif_net.layers)

    def test_model_config_names_match_table1(self):
        assert "SRM" in SLAYER_SRM.name
        assert "4b" in SNE_LIF_4B.name
        assert SNE_LIF_4B.weight_bits == 4
        assert SLAYER_SRM.weight_bits is None

    def test_bad_neuron_model_rejected(self):
        with pytest.raises(ValueError, match="neuron_model"):
            build_small_network(neuron_model="bogus")
