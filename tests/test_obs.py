"""Observability core: metrics registry, trace spans, event journal.

Covers what the integration suites (``test_dist.py``, ``test_serve.py``)
assume: labeled counters/gauges/histograms that snapshot to JSON and
merge across processes, Prometheus text rendering, span nesting and
context adoption, journal append semantics under concurrent writers
(threads sharing one descriptor and forked processes appending to one
file), per-process snapshot flush/merge, and the configure/env gates
that keep all of it a no-op when observability is off.
"""

import json
import multiprocessing
import os
import threading

import pytest

from repro.runtime import obs
from repro.runtime.obs import (
    Histogram,
    Journal,
    MetricsRegistry,
    SpanContext,
    read_journal,
)


@pytest.fixture(autouse=True)
def _isolated_obs(monkeypatch):
    # Every test runs with a private registry and observability off;
    # tests that need a journal call obs.configure themselves.
    old = obs.set_registry(MetricsRegistry())
    monkeypatch.delenv(obs.OBS_DIR_ENV, raising=False)
    obs.configure(False)
    yield
    obs.configure(False)
    obs.set_registry(old)


class TestCountersAndGauges:
    def test_counter_labels_value_total(self):
        c = MetricsRegistry().counter("jobs_total", "help text")
        c.inc(kind="eval", status="ok")
        c.inc(2, kind="eval", status="ok")
        c.inc(kind="eval", status="failed")
        assert c.value(kind="eval", status="ok") == 3
        assert c.value(status="ok", kind="eval") == 3  # order-insensitive
        assert c.value(kind="eval", status="failed") == 1
        assert c.value(kind="never") == 0.0
        assert c.total() == 4

    def test_counter_rejects_negative_increment(self):
        c = MetricsRegistry().counter("jobs_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_sets_and_goes_negative(self):
        g = MetricsRegistry().gauge("queue_depth")
        g.set(5, shard="a")
        g.inc(-2, shard="a")
        assert g.value(shard="a") == 3
        g.set(-1, shard="a")
        assert g.value(shard="a") == -1


class TestHistogram:
    def test_observe_count_and_quantile(self):
        h = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5):
            h.observe(v)
        assert h.count() == 4
        assert h.quantile(0) == 0.01    # nearest rank 1 -> first bucket
        assert h.quantile(50) == 0.1
        assert h.quantile(100) == 1.0
        h.observe(5.0)  # overflow lands past the last bound
        assert h.quantile(100) == 1.0   # reported at bucket resolution
        assert h.count() == 5

    def test_quantile_validates_and_handles_empty(self):
        h = Histogram("latency", buckets=(1.0,))
        assert h.quantile(99) == 0.0
        with pytest.raises(ValueError):
            h.quantile(101)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("latency", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.names() == ["a"]

    def test_kind_mismatch_is_an_error(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("a")
        with pytest.raises(ValueError, match="already registered"):
            r.histogram("a")

    def test_snapshot_merge_round_trip(self):
        src = MetricsRegistry()
        src.counter("jobs", "n").inc(3, kind="eval")
        src.gauge("depth").set(7)
        src.histogram("lat", buckets=(0.1, 1.0)).observe(0.05, op="get")
        dst = MetricsRegistry()
        dst.counter("jobs").inc(1, kind="eval")
        dst.merge(src.snapshot())
        dst.merge(src.snapshot())  # fleet view: two identical workers
        assert dst.counter("jobs").value(kind="eval") == 7
        assert dst.gauge("depth").value() == 14
        assert dst.histogram("lat", buckets=(0.1, 1.0)).count(op="get") == 2

    def test_merge_rejects_schema_and_kind_mismatches(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="schema"):
            r.merge({"schema": 999, "metrics": {}})
        with pytest.raises(ValueError, match="unknown kind"):
            r.merge({"schema": obs.OBS_SCHEMA,
                     "metrics": {"x": {"kind": "summary", "series": []}}})

    def test_merge_rejects_histogram_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        b = MetricsRegistry()
        b.histogram("lat", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ValueError):
            b.merge(a.snapshot())

    def test_snapshot_is_json_serializable(self):
        r = MetricsRegistry()
        r.counter("jobs").inc(kind="eval")
        r.histogram("lat").observe(0.2)
        doc = json.loads(json.dumps(r.snapshot()))
        assert doc["schema"] == obs.OBS_SCHEMA
        assert set(doc["metrics"]) == {"jobs", "lat"}


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        r = MetricsRegistry()
        r.counter("repro_jobs_total", "Jobs by status.").inc(2, status="ok")
        r.gauge("repro_depth").set(3)
        text = r.render_prometheus()
        assert "# HELP repro_jobs_total Jobs by status.\n" in text
        assert "# TYPE repro_jobs_total counter\n" in text
        assert 'repro_jobs_total{status="ok"} 2\n' in text
        assert "# TYPE repro_depth gauge\n" in text
        assert "repro_depth 3\n" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = r.render_prometheus()
        assert 'lat_bucket{le="0.1"} 1\n' in text
        assert 'lat_bucket{le="1"} 2\n' in text
        assert 'lat_bucket{le="+Inf"} 3\n' in text
        assert "lat_sum 5.55\n" in text
        assert "lat_count 3\n" in text

    def test_label_values_are_escaped(self):
        r = MetricsRegistry()
        r.counter("c").inc(path='a"b\\c\nd')
        text = r.render_prometheus()
        assert r'c{path="a\"b\\c\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestSpans:
    def test_root_span_starts_a_trace(self):
        with obs.span("outer") as ctx:
            assert obs.current_span() is ctx
            assert ctx.parent_id is None
            assert len(ctx.trace_id) == 16
        assert obs.current_span() is None

    def test_nested_span_shares_trace_and_links_parent(self):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert inner.span_id != outer.span_id
            assert obs.current_span() is outer

    def test_activate_adopts_a_deserialized_context(self):
        wire = SpanContext(trace_id="t" * 16, span_id="s" * 16).to_doc()
        ctx = SpanContext.from_doc(wire)
        with obs.activate(ctx):
            with obs.span("child") as child:
                assert child.trace_id == "t" * 16
                assert child.parent_id == "s" * 16
        assert obs.current_span() is None

    def test_activate_none_is_a_no_op(self):
        with obs.activate(None):
            with obs.span("root") as ctx:
                assert ctx.parent_id is None

    def test_span_journals_duration_and_status(self, tmp_path):
        obs.configure(tmp_path)
        with obs.span("work", items=3):
            pass
        with pytest.raises(RuntimeError):
            with obs.span("broken"):
                raise RuntimeError("boom")
        events = read_journal(tmp_path / "journal.ndjson")
        by_name = {e["event"]: e for e in events}
        assert by_name["work"]["status"] == "ok"
        assert by_name["work"]["items"] == 3
        assert by_name["work"]["duration_s"] >= 0.0
        assert by_name["broken"]["status"] == "RuntimeError"


class TestJournal:
    def test_emit_record_fields_and_seq(self, tmp_path):
        j = Journal(tmp_path / "j.ndjson")
        ctx = SpanContext(trace_id="t" * 16, span_id="s" * 16, parent_id="p" * 16)
        j.emit("chunk.submit", ctx=ctx, chunk="c-0", jobs=4)
        j.emit("chunk.complete", ctx=ctx)
        j.close()
        events = read_journal(tmp_path / "j.ndjson")
        assert [e["seq"] for e in events] == [1, 2]
        first = events[0]
        assert first["event"] == "chunk.submit"
        assert first["trace_id"] == "t" * 16
        assert first["span_id"] == "s" * 16
        assert first["parent_id"] == "p" * 16
        assert first["chunk"] == "c-0" and first["jobs"] == 4
        assert first["proc"] == obs.PROC_ID

    def test_read_journal_skips_torn_and_blank_lines(self, tmp_path):
        path = tmp_path / "j.ndjson"
        path.write_text('{"event": "a", "seq": 1}\n\n{"event": "b", "se')
        events = read_journal(path)
        assert [e["event"] for e in events] == ["a"]
        assert read_journal(tmp_path / "missing.ndjson") == []

    def test_concurrent_thread_writers_never_tear_lines(self, tmp_path):
        j = Journal(tmp_path / "j.ndjson")
        threads = [
            threading.Thread(target=lambda w=w: [
                j.emit("tick", writer=w, payload="x" * 256) for _ in range(100)
            ])
            for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        j.close()
        events = read_journal(tmp_path / "j.ndjson")
        assert len(events) == 800  # every line parsed -> none torn
        # One shared descriptor: seq totally orders the file's events.
        assert sorted(e["seq"] for e in events) == list(range(1, 801))

    def test_forked_writers_interleave_whole_lines(self, tmp_path):
        """Forked children append to the inherited descriptor; the
        at-fork hook gives each a fresh PROC_ID and seq scope, so the
        shared file stays totally ordered per process."""
        obs.configure(tmp_path)
        obs.emit("parent.start")

        def child(i):
            for n in range(50):
                obs.emit("child.tick", writer=i, payload="y" * 128)
            os._exit(0)

        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=child, args=(i,)) for i in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        events = read_journal(tmp_path / "journal.ndjson")
        ticks = [e for e in events if e["event"] == "child.tick"]
        assert len(ticks) == 200
        by_proc = {}
        for e in ticks:
            by_proc.setdefault(e["proc"], []).append(e["seq"])
        assert len(by_proc) == 4  # distinct identity per forked child
        parent_proc = next(e["proc"] for e in events
                           if e["event"] == "parent.start")
        assert parent_proc not in by_proc
        for seqs in by_proc.values():
            assert seqs == sorted(seqs) == list(range(1, 51))


class TestJournalTailer:
    """Incremental journal tailing under truncation, rotation and
    deletion — what ``repro top`` and the supervisor scanner sit on."""

    @staticmethod
    def _append(path, *docs):
        with open(path, "a", encoding="utf-8") as fh:
            for doc in docs:
                fh.write(json.dumps(doc) + "\n")

    def test_polls_are_incremental(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        tailer = obs.JournalTailer(path)
        assert tailer.poll() == []  # not created yet: no error
        self._append(path, {"event": "a"}, {"event": "b"})
        assert [e["event"] for e in tailer.poll()] == ["a", "b"]
        assert tailer.poll() == []  # nothing new
        self._append(path, {"event": "c"})
        assert [e["event"] for e in tailer.poll()] == ["c"]
        assert tailer.resets == 0

    def test_truncated_journal_restarts_from_zero(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        self._append(path, {"event": "old-1"}, {"event": "old-2"})
        tailer = obs.JournalTailer(path)
        assert len(tailer.poll()) == 2
        # An operator truncates the journal in place (same inode).
        path.write_text("")
        self._append(path, {"event": "fresh"})
        assert [e["event"] for e in tailer.poll()] == ["fresh"]
        assert tailer.resets == 1

    def test_rotated_journal_is_detected_by_inode(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        self._append(path, {"event": "gen-1"})
        tailer = obs.JournalTailer(path)
        assert len(tailer.poll()) == 1
        # logrotate-style: move aside, recreate at the same path.  The
        # replacement is *longer* than the read offset, so only the
        # inode change can reveal the rotation.
        path.rename(tmp_path / "journal.ndjson.1")
        self._append(path, {"event": "gen-2-a"}, {"event": "gen-2-b"})
        assert [e["event"] for e in tailer.poll()] == ["gen-2-a", "gen-2-b"]
        assert tailer.resets == 1

    def test_deleted_then_recreated_journal(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        self._append(path, {"event": "before"})
        tailer = obs.JournalTailer(path)
        assert len(tailer.poll()) == 1
        path.unlink()
        assert tailer.poll() == []  # gone: reset, no crash
        self._append(path, {"event": "after"})
        assert [e["event"] for e in tailer.poll()] == ["after"]
        assert tailer.resets >= 1

    def test_partial_line_is_buffered_until_complete(self, tmp_path):
        path = tmp_path / "journal.ndjson"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"event": "whole"}\n{"event": "to')
        tailer = obs.JournalTailer(path)
        assert [e["event"] for e in tailer.poll()] == ["whole"]
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('rn"}\nnot json at all\n{"event": "next"}\n')
        # The torn tail completes across polls; garbage lines skip.
        assert [e["event"] for e in tailer.poll()] == ["torn", "next"]

    def test_journal_writer_feeds_the_tailer(self, tmp_path):
        obs.configure(tmp_path)
        tailer = obs.JournalTailer(tmp_path / "journal.ndjson")
        obs.emit("unit.test", x=1)
        obs.emit("unit.test", x=2)
        events = [e for e in tailer.poll() if e["event"] == "unit.test"]
        assert [e["x"] for e in events] == [1, 2]


class TestFlushAndReadMetrics:
    def test_flush_then_read_merges_fleet_snapshots(self, tmp_path):
        obs.configure(tmp_path)
        obs.get_registry().counter("repro_jobs_total").inc(5, kind="eval")
        path = obs.flush_metrics()
        assert path is not None and path.parent == tmp_path / "metrics"
        # A second process's snapshot, written independently.
        other = MetricsRegistry()
        other.counter("repro_jobs_total").inc(2, kind="eval")
        doc = other.snapshot()
        doc["proc"] = "otherhost-1-abcdef"
        (tmp_path / "metrics" / "otherhost-1-abcdef.json").write_text(
            json.dumps(doc))
        merged = obs.read_metrics(tmp_path)
        assert merged.counter("repro_jobs_total").value(kind="eval") == 7

    def test_flush_is_idempotent_not_additive(self, tmp_path):
        obs.configure(tmp_path)
        obs.get_registry().counter("c").inc(3)
        obs.flush_metrics()
        obs.flush_metrics()  # same proc file overwritten, not doubled
        assert obs.read_metrics(tmp_path).counter("c").total() == 3

    def test_read_metrics_skips_unreadable_snapshots(self, tmp_path):
        (tmp_path / "metrics").mkdir(parents=True)
        (tmp_path / "metrics" / "bad.json").write_text("{not json")
        good = MetricsRegistry()
        good.counter("c").inc()
        (tmp_path / "metrics" / "good.json").write_text(
            json.dumps(good.snapshot()))
        assert obs.read_metrics(tmp_path).counter("c").total() == 1

    def test_flush_without_obs_dir_or_metrics_is_none(self, tmp_path):
        assert obs.flush_metrics() is None          # observability off
        obs.configure(tmp_path)
        assert obs.flush_metrics() is None          # empty registry


class TestConfiguration:
    def test_disabled_emit_and_span_still_work(self):
        assert obs.emit("anything", x=1) is None
        with obs.span("quiet") as ctx:
            assert ctx.trace_id  # context exists even with journal off
        assert obs.get_journal() is None

    def test_env_auto_configuration(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.OBS_DIR_ENV, str(tmp_path / "from-env"))
        obs._STATE["configured"] = False  # simulate a fresh process
        assert obs.get_journal() is not None
        assert obs.obs_dir() == tmp_path / "from-env"
        assert obs.emit("hello")["event"] == "hello"

    def test_false_overrides_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.OBS_DIR_ENV, str(tmp_path))
        obs.configure(False)
        assert obs.obs_dir() is None
        assert obs.emit("hello") is None

    def test_reconfigure_moves_the_journal(self, tmp_path):
        obs.configure(tmp_path / "a")
        obs.emit("one")
        obs.configure(tmp_path / "b")
        obs.emit("two")
        assert [e["event"] for e in
                read_journal(tmp_path / "a" / "journal.ndjson")] == ["one"]
        assert [e["event"] for e in
                read_journal(tmp_path / "b" / "journal.ndjson")] == ["two"]

    def test_emit_profile_writes_one_event_per_span(self, tmp_path):
        obs.configure(tmp_path)
        summary = {"total_s": 1.0, "spans": {
            "sne.update": {"count": 3, "wall_s": 0.5, "events": 10,
                           "events_per_s": 20.0},
            "sne.fire": {"count": 1, "wall_s": 0.1, "events": 2,
                         "events_per_s": 20.0},
        }}
        assert obs.emit_profile(summary, workload="fig5b") == 2
        events = read_journal(tmp_path / "journal.ndjson")
        spans = {e["span"] for e in events if e["event"] == "profile.span"}
        assert spans == {"sne.update", "sne.fire"}
        assert all(e["workload"] == "fig5b" for e in events)
        obs.configure(False)
        assert obs.emit_profile(summary) == 0


class TestQuantileHelper:
    def test_shared_helper_matches_inline_rank_math(self):
        buckets = (0.01, 0.1, 1.0)
        counts = [1, 2, 1]
        assert obs.quantile_from_counts(buckets, counts, 4, 0) == (0.01, False)
        assert obs.quantile_from_counts(buckets, counts, 4, 50) == (0.1, False)
        assert obs.quantile_from_counts(buckets, counts, 4, 100) == (1.0, False)

    def test_overflow_rank_is_flagged_not_silently_capped(self):
        # All mass past the last finite bound: the rank lands in +Inf.
        bound, overflow = obs.quantile_from_counts((0.1, 1.0), [0, 0], 3, 99)
        assert (bound, overflow) == (1.0, True)
        # Mixed: p50 resolves finitely, p99 overflows.
        assert obs.quantile_from_counts((0.1, 1.0), [2, 0], 3, 50) == (0.1, False)
        assert obs.quantile_from_counts((0.1, 1.0), [2, 0], 3, 99) == (1.0, True)

    def test_empty_and_invalid_inputs(self):
        assert obs.quantile_from_counts((1.0,), [0], 0, 99) == (0.0, False)
        with pytest.raises(ValueError):
            obs.quantile_from_counts((1.0,), [1], 1, 101)

    def test_histogram_percentile_reports_overflow(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        assert h.percentile(50) == (0.1, False)
        h.observe(5.0)
        h.observe(6.0)
        assert h.percentile(99) == (1.0, True)
        # quantile() keeps the old bound-only contract.
        assert h.quantile(99) == 1.0
        with pytest.raises(ValueError):
            h.percentile(-1)


class TestExemplars:
    def _ctx(self, trace="tr-1"):
        return SpanContext(trace_id=trace, span_id="sp-1")

    def test_captured_only_under_an_ambient_span(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)  # no span -> no exemplar
        assert h.worst_exemplar() is None
        with obs.activate(self._ctx()):
            h.observe(0.05)
        ex = h.worst_exemplar()
        assert ex["trace_id"] == "tr-1" and ex["value"] == 0.05

    def test_slowest_sample_wins_per_bucket(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        with obs.activate(self._ctx("tr-slow")):
            h.observe(0.09)
        with obs.activate(self._ctx("tr-fast")):
            h.observe(0.01)  # same bucket, smaller -> kept out
        assert h.exemplar(0)["trace_id"] == "tr-slow"

    def test_worst_exemplar_prefers_highest_bucket(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        with obs.activate(self._ctx("tr-ok")):
            h.observe(0.05)
        with obs.activate(self._ctx("tr-overflow")):
            h.observe(7.0)  # +Inf bucket
        assert h.worst_exemplar()["trace_id"] == "tr-overflow"

    def test_exemplars_survive_snapshot_merge_idempotently(self):
        src = MetricsRegistry()
        h = src.histogram("lat", buckets=(0.1, 1.0))
        with obs.activate(self._ctx("tr-src")):
            h.observe(0.5)
        dst = MetricsRegistry()
        snap = src.snapshot()
        dst.merge(snap)
        dst.merge(snap)  # the fleet reader merges the same file twice
        merged = dst.histogram("lat", buckets=(0.1, 1.0))
        assert merged.exemplar(1)["trace_id"] == "tr-src"
        # The larger foreign sample replaces the local one on merge.
        other = MetricsRegistry()
        h2 = other.histogram("lat", buckets=(0.1, 1.0))
        with obs.activate(self._ctx("tr-worse")):
            h2.observe(0.9)
        dst.merge(other.snapshot())
        assert dst.histogram(
            "lat", buckets=(0.1, 1.0)).exemplar(1)["trace_id"] == "tr-worse"

    def test_malformed_foreign_exemplars_are_dropped_not_fatal(self):
        src = MetricsRegistry()
        src.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        snap = src.snapshot()
        snap["metrics"]["lat"]["series"][0]["exemplars"] = {
            "not-an-int": {"trace_id": "x", "value": 1.0, "ts": 1.0},
            "0": "not-a-dict",
        }
        dst = MetricsRegistry()
        dst.merge(snap)  # must not raise
        assert dst.histogram("lat", buckets=(0.1, 1.0)).count() == 1

    def test_stale_exemplar_is_replaced_after_ttl(self, monkeypatch):
        h = Histogram("lat", buckets=(0.1, 1.0))
        clock = {"now": 1000.0}
        monkeypatch.setattr(obs.time, "time", lambda: clock["now"])
        with obs.activate(self._ctx("tr-old")):
            h.observe(0.09)
        clock["now"] += obs.EXEMPLAR_TTL_S + 1
        with obs.activate(self._ctx("tr-new")):
            h.observe(0.01)  # smaller, but the old exemplar expired
        assert h.exemplar(0)["trace_id"] == "tr-new"


class TestOpenMetricsExemplarExposition:
    #: ``<name>{labels} <int> # {trace_id="..."} <value> <ts>`` — the
    #: OpenMetrics exemplar grammar the --prom surface must emit.
    import re as _re
    _BUCKET = _re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*_bucket\{[^}]*le="[^"]+"\} \d+'
        r'( # \{trace_id="[^"]*"\} [0-9.eE+-]+ \d+\.\d{3})?$')
    _OTHER = _re.compile(
        r'^(# (HELP|TYPE) .*|[a-zA-Z_:][a-zA-Z0-9_:]*(_sum|_count)?'
        r'(\{[^}]*\})? -?[0-9.eE+-]+)$')

    def _lint(self, text):
        for line in text.splitlines():
            if "_bucket" in line:
                assert self._BUCKET.match(line), f"bad bucket line: {line!r}"
            else:
                assert self._OTHER.match(line), f"bad line: {line!r}"

    def test_exemplar_bearing_exposition_lints_clean(self):
        r = MetricsRegistry()
        h = r.histogram("repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        with obs.activate(SpanContext("tr-a", "sp")):
            h.observe(0.05, worker="w1")
            h.observe(9.0, worker="w1")  # overflow exemplar on +Inf
        r.counter("repro_jobs_total", "Jobs.").inc(kind="eval")
        r.gauge("repro_depth").set(3)
        text = r.render_prometheus()
        self._lint(text)
        assert ' # {trace_id="tr-a"} 0.05 ' in text
        inf_lines = [l for l in text.splitlines() if 'le="+Inf"' in l]
        assert any('trace_id="tr-a"' in l for l in inf_lines)

    def test_exposition_without_exemplars_is_unchanged(self):
        r = MetricsRegistry()
        r.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = r.render_prometheus()
        self._lint(text)
        assert "trace_id" not in text

    def test_quoted_trace_ids_are_escaped_in_exemplars(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=(1.0,))
        with obs.activate(SpanContext('tr"quote', "sp")):
            h.observe(0.5)
        assert 'trace_id="tr\\"quote"' in r.render_prometheus()
