"""Tests for the hot-path profiling subsystem (repro.runtime.profile)."""

import json

import numpy as np
import pytest

from repro.events import EventStream, SyntheticDVSGesture
from repro.hw import PAPER_CONFIG, SNE, HardwareEvaluator, SNEConfig, compile_network
from repro.runtime import (
    ProfileAggregator,
    Profiler,
    render_profile,
    run_jobs,
)
from repro.runtime.cli import main
from repro.snn import build_small_network

#: Every profile-span record must carry exactly this shape (the JSON
#: contract the CLI, job results and aggregator all share).
SPAN_KEYS = {"count", "wall_s", "events", "events_per_s"}


def small_deployment(n_per_class=1, slices=2):
    data = SyntheticDVSGesture(size=16, n_steps=4).generate(
        n_per_class=n_per_class, seed=5
    )
    net = build_small_network(input_size=16, n_classes=data.n_classes,
                              channels=2, hidden=8, seed=5)
    programs = compile_network(net, (2, 16, 16))
    return data, HardwareEvaluator(programs, PAPER_CONFIG.with_slices(slices))


class TestProfiler:
    def test_add_accumulates_count_wall_events(self):
        p = Profiler()
        p.add("stage", 0.5, events=10)
        p.add("stage", 0.25, count=3, events=5)
        span = p.spans["stage"]
        assert span.count == 4
        assert span.wall_s == pytest.approx(0.75)
        assert span.events == 15
        assert span.events_per_s == pytest.approx(20.0)

    def test_zero_wall_time_has_zero_throughput(self):
        p = Profiler()
        p.add("idle", 0.0, events=100)
        assert p.spans["idle"].events_per_s == 0.0

    def test_span_context_manager_measures(self):
        p = Profiler()
        with p.span("work", events=4):
            pass
        assert p.spans["work"].count == 1
        assert p.spans["work"].wall_s >= 0.0
        assert p.spans["work"].events == 4

    def test_summary_shape_and_ordering(self):
        p = Profiler()
        p.add("fast", 0.1, events=1)
        p.add("slow", 0.9, events=2)
        summary = p.summary()
        assert set(summary) == {"total_s", "spans"}
        assert summary["total_s"] >= 0.0
        assert list(summary["spans"]) == ["slow", "fast"]  # wall-time descending
        for span in summary["spans"].values():
            assert set(span) == SPAN_KEYS
        json.dumps(summary)  # the summary must be pure JSON

    def test_merge_profiler_and_summary_dict(self):
        a, b = Profiler(), Profiler()
        a.add("stage", 0.5, events=5)
        b.add("stage", 0.5, events=5)
        b.add("other", 0.1)
        a.merge(b)
        assert a.spans["stage"].wall_s == pytest.approx(1.0)
        assert a.spans["stage"].events == 10
        c = Profiler()
        c.merge(a.summary())
        assert c.spans["stage"].count == a.spans["stage"].count
        assert c.spans["other"].wall_s == pytest.approx(0.1)

    def test_render_mentions_every_span(self):
        p = Profiler()
        p.add("sne.update", 0.2, count=7, events=70)
        text = render_profile(p.summary(), title="t")
        assert "sne.update" in text and "7" in text


class TestSNEProfileSpans:
    def make_run(self, **kwargs):
        data, evaluator = small_deployment()
        profiler = Profiler()
        sne = SNE(evaluator.config)
        sne.run_network(evaluator.programs, data.samples[0].stream,
                        profiler=profiler, **kwargs)
        return profiler

    def test_run_network_emits_stage_spans(self):
        profiler = self.make_run()
        names = set(profiler.spans)
        assert {"sne.update", "sne.fire", "sne.reset", "sne.assemble"} <= names
        assert any(n.startswith("sne.layer.") for n in names)
        for span in profiler.spans.values():
            assert set(span.as_dict()) == SPAN_KEYS

    def test_reference_loop_profiles_too(self):
        profiler = self.make_run(batched=False)
        assert profiler.spans["sne.update"].count > 0

    def test_pipelined_mode_emits_stage_spans(self):
        data, evaluator = small_deployment(slices=8)
        profiler = Profiler()
        SNE(evaluator.config).run_network_pipelined(
            evaluator.programs, data.samples[0].stream, profiler=profiler
        )
        assert {"sne.update", "sne.fire", "sne.reset", "sne.assemble"} <= set(
            profiler.spans
        )
        assert profiler.spans["sne.update"].events > 0

    def test_update_span_counts_events(self):
        data, evaluator = small_deployment()
        stream = data.samples[0].stream
        profiler = Profiler()
        SNE(evaluator.config).run_layer(evaluator.programs[0], stream,
                                        profiler=profiler)
        assert profiler.spans["sne.update"].events == len(stream)

    def test_no_profiler_no_spans_no_crash(self):
        data, evaluator = small_deployment()
        out = evaluator.run_sample(data.samples[0].stream, data.samples[0].label)
        assert out.cycles > 0


class TestProfiledJobs:
    def test_profile_flag_changes_job_hash_only_when_set(self):
        data, evaluator = small_deployment()
        plain_a = evaluator.sample_jobs(data)[0]
        plain_b = evaluator.sample_jobs(data, profile=False)[0]
        profiled = evaluator.sample_jobs(data, profile=True)[0]
        assert plain_a.job_hash == plain_b.job_hash
        assert profiled.job_hash != plain_a.job_hash
        assert profiled.params["profile"] is True
        assert "profile" not in plain_a.params

    def test_profiled_results_carry_span_json(self):
        data, evaluator = small_deployment()
        run = run_jobs(evaluator.sample_jobs(data, max_samples=2, profile=True))
        for result in run.results:
            summary = result.unwrap()["profile"]
            assert set(summary) == {"total_s", "spans"}
            assert "runner.sample" in summary["spans"]
            assert set(summary["spans"]["sne.update"]) == SPAN_KEYS

    def test_plain_results_carry_no_profile(self):
        data, evaluator = small_deployment()
        run = run_jobs(evaluator.sample_jobs(data, max_samples=1))
        assert "profile" not in run.results[0].unwrap()

    def test_aggregator_merges_across_process_backend(self):
        data, evaluator = small_deployment(n_per_class=1)
        jobs = evaluator.sample_jobs(data, max_samples=4, profile=True)
        aggregator = ProfileAggregator()
        run = run_jobs(jobs, executor="process", progress=aggregator)
        assert not run.failures()
        assert aggregator.profiled == 4
        assert aggregator.profiler.spans["runner.sample"].count == 4
        assert set(aggregator.summary()) == {"total_s", "spans"}

    def test_aggregator_ignores_plain_jobs(self):
        data, evaluator = small_deployment()
        aggregator = ProfileAggregator()
        run_jobs(evaluator.sample_jobs(data, max_samples=2), progress=aggregator)
        assert aggregator.profiled == 0
        assert not aggregator.profiler.spans


class TestProfileCLI:
    def test_profile_command_prints_table_and_json(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        rc = main(["profile", "--size", "16", "--steps", "4", "--per-class", "1",
                   "--max-samples", "2", "--slices", "2", "--quiet",
                   "--json", str(out_path)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "sne.update" in captured.out
        doc = json.loads(out_path.read_text())
        assert doc["workload"]["samples"] == 2
        assert set(doc["spans"]["sne.update"]) == SPAN_KEYS

    def test_profile_command_per_event_mode(self, capsys):
        rc = main(["profile", "--size", "16", "--steps", "4", "--per-class", "1",
                   "--max-samples", "1", "--slices", "2", "--per-event",
                   "--quiet"])
        assert rc == 0
        assert "per-event reference" in capsys.readouterr().out


class TestVectorizedParity:
    """The vectorised event loop must be bit-identical to the reference."""

    @pytest.mark.filterwarnings(
        "ignore:kernel 'numba' unavailable:RuntimeWarning")
    @pytest.mark.parametrize("kernel", ["reference", "numpy", "numba"])
    def test_random_layers_match_reference(self, kernel):
        import dataclasses

        from repro.hw.fuzz import random_case

        for seed in range(12):
            case = random_case(seed)
            out_vec, stats_vec = SNE(SNEConfig(n_slices=case.n_slices)).run_layer(
                case.program, case.stream, batched=True, kernel=kernel
            )
            out_ref, stats_ref = SNE(SNEConfig(n_slices=case.n_slices)).run_layer(
                case.program, case.stream, batched=False
            )
            assert out_vec == out_ref, f"outputs diverged (seed {seed})"
            d_vec = dataclasses.asdict(stats_vec)
            d_ref = dataclasses.asdict(stats_ref)
            assert d_vec == d_ref, f"stats diverged (seed {seed})"
            # Counter types must stay plain ints (JSON/cache contract).
            assert all(type(v) is type(d_ref[k]) for k, v in d_vec.items())

    @pytest.mark.filterwarnings(
        "ignore:kernel 'numba' unavailable:RuntimeWarning")
    @pytest.mark.parametrize("kernel", ["reference", "numpy", "numba"])
    def test_saturating_updates_match_reference(self, kernel):
        """Force mid-step saturation: per-event clipping must survive
        the batched prefix-sum fast path on every kernel."""
        import dataclasses

        from repro.hw import LayerGeometry, LayerKind, LayerProgram

        g = LayerGeometry(LayerKind.DENSE, 1, 2, 2, 32, 1, 1)
        # Constant +-7 weights drive every membrane monotonically into
        # the 8-bit rails, clipping mid-step (4 events x 7 per step).
        w = np.full((32, 4), 7, dtype=np.int64)
        w[16:] = -7
        prog = LayerProgram(g, w, threshold=1000, leak=0)  # never fire
        dense = np.ones((6, 1, 2, 2), dtype=np.uint8)  # 4 events per step
        stream = EventStream.from_dense(dense)
        cfg = SNEConfig(n_slices=1)
        sne_vec, sne_ref = SNE(cfg), SNE(cfg)
        out_vec, stats_vec = sne_vec.run_layer(prog, stream, batched=True,
                                               kernel=kernel)
        out_ref, stats_ref = sne_ref.run_layer(prog, stream, batched=False)
        assert out_vec == out_ref
        assert dataclasses.asdict(stats_vec) == dataclasses.asdict(stats_ref)
        for sl_vec, sl_ref in zip(sne_vec.slices, sne_ref.slices):
            assert np.array_equal(sl_vec.membrane_snapshot(),
                                  sl_ref.membrane_snapshot())
