"""Tests for the SNE top level: layer runs, passes, modes, statistics."""

import numpy as np
import pytest

from repro.events import EventStream
from repro.hw import (
    SNE,
    LayerGeometry,
    LayerKind,
    LayerProgram,
    SNEConfig,
    SNEStats,
    compile_network,
)
from repro.snn import LIFParams, build_small_network


def conv_program(c_in=2, c_out=4, plane=8, threshold=4, leak=1, seed=0):
    rng = np.random.default_rng(seed)
    g = LayerGeometry(
        LayerKind.CONV, c_in, plane, plane, c_out, plane, plane,
        kernel=3, stride=1, padding=1,
    )
    w = rng.integers(-3, 4, (c_out, c_in, 3, 3))
    return LayerProgram(g, w, threshold=threshold, leak=leak)


def sparse_stream(shape=(6, 2, 8, 8), density=0.06, seed=0):
    rng = np.random.default_rng(seed)
    return EventStream.from_dense((rng.random(shape) < density).astype(np.uint8))


class TestRunLayer:
    def test_envelope_validation(self):
        sne = SNE(SNEConfig(n_slices=1))
        with pytest.raises(ValueError, match="envelope"):
            sne.run_layer(conv_program(), sparse_stream(shape=(6, 3, 8, 8)))

    def test_output_envelope(self):
        sne = SNE(SNEConfig(n_slices=1))
        out, _ = sne.run_layer(conv_program(), sparse_stream())
        assert out.shape == (6, 4, 8, 8)

    def test_cycle_accounting_identity(self):
        """cycles = passes * (reset + events*48 + steps*fire)."""
        cfg = SNEConfig(n_slices=1)
        sne = SNE(cfg)
        stream = sparse_stream()
        _, stats = sne.run_layer(conv_program(), stream)
        expected = stats.passes * (
            cfg.cycles_per_reset
            + len(stream) * cfg.cycles_per_event
            + stream.n_steps * cfg.cycles_per_fire
        )
        assert stats.cycles == expected

    def test_empty_stream_still_runs_brackets(self):
        sne = SNE(SNEConfig(n_slices=1))
        stream = EventStream.empty((4, 2, 8, 8))
        out, stats = sne.run_layer(conv_program(), stream)
        assert len(out) == 0
        assert stats.fire_events == 4
        assert stats.sops == 0

    def test_energy_proportionality_of_cycles(self):
        """The title claim: cycles scale linearly with event count."""
        cfg = SNEConfig(n_slices=1)
        prog = conv_program(threshold=100)  # keep outputs silent
        cycles = []
        for density in (0.02, 0.04, 0.08):
            stream = sparse_stream(density=density, seed=1)
            _, stats = SNE(cfg).run_layer(prog, stream)
            cycles.append((len(stream), stats.cycles))
        # Remove the constant bracket overhead, then ratios must match.
        overhead = cfg.cycles_per_reset + 6 * cfg.cycles_per_fire
        for n_events, cyc in cycles:
            assert cyc - overhead == n_events * cfg.cycles_per_event

    def test_multi_pass_when_layer_overflows(self):
        cfg = SNEConfig(n_slices=1)  # 1024 neurons
        prog = conv_program(c_out=32, plane=8)  # 2048 outputs -> 2 passes
        stream = sparse_stream()
        _, stats = SNE(cfg).run_layer(prog, stream)
        assert stats.passes == 2
        assert stats.dma_words_in == 2 * (1 + len(stream) + stream.n_steps)

    def test_multi_pass_output_equals_single_pass_output(self):
        """Passes partition the neurons; results must not depend on it."""
        prog = conv_program(c_out=32, plane=8, seed=3)
        stream = sparse_stream(seed=4)
        out_small, _ = SNE(SNEConfig(n_slices=1)).run_layer(prog, stream)
        out_big, _ = SNE(SNEConfig(n_slices=8)).run_layer(prog, stream)
        assert out_small == out_big

    def test_more_slices_fewer_passes_same_cycles_per_pass(self):
        prog = conv_program(c_out=32, plane=8)
        stream = sparse_stream()
        _, s1 = SNE(SNEConfig(n_slices=1)).run_layer(prog, stream)
        _, s2 = SNE(SNEConfig(n_slices=2)).run_layer(prog, stream)
        assert s1.passes == 2 and s2.passes == 1
        assert s1.cycles == 2 * s2.cycles
        assert s1.sops == s2.sops  # same total work, different schedule

    def test_sops_equal_active_cluster_cycles(self):
        _, stats = SNE(SNEConfig(n_slices=1)).run_layer(conv_program(), sparse_stream())
        assert stats.sops == stats.active_cluster_cycles

    def test_registers_reflect_programming(self):
        cfg = SNEConfig(n_slices=2)
        sne = SNE(cfg)
        prog = conv_program()
        sne.run_layer(prog, sparse_stream())
        assert sne.registers.lif_params(0) == (prog.threshold, prog.leak)


class TestRunNetwork:
    def make_net_and_stream(self, seed=0):
        net = build_small_network(
            input_size=8, channels=4, hidden=16, n_classes=5,
            lif=LIFParams(threshold=1.0, leak=0.05),
        )
        programs = compile_network(net, (2, 8, 8))
        return programs, sparse_stream(seed=seed)

    def test_chained_execution(self):
        programs, stream = self.make_net_and_stream()
        sne = SNE(SNEConfig(n_slices=2))
        out, stats = sne.run_network(programs, stream)
        assert out.shape == (6, 5, 1, 1)
        assert len(stats.per_layer) == len(programs)
        assert stats.cycles == sum(s.cycles for _, s in stats.per_layer)

    def test_rejects_empty_program_list(self):
        with pytest.raises(ValueError):
            SNE().run_network([], sparse_stream())

    def test_stats_utilization_bounded(self):
        programs, stream = self.make_net_and_stream()
        _, stats = SNE(SNEConfig(n_slices=2)).run_network(programs, stream)
        assert 0.0 <= stats.utilization() <= 1.0

    def test_time_and_rate_helpers(self):
        cfg = SNEConfig(n_slices=2)
        programs, stream = self.make_net_and_stream()
        _, stats = SNE(cfg).run_network(programs, stream)
        assert stats.time_s(cfg) == pytest.approx(stats.cycles / cfg.freq_hz)
        if stats.cycles:
            assert stats.sops_per_second(cfg) <= cfg.peak_sops_per_s * 1.001


class TestPipelinedMode:
    def make_small_programs(self):
        # Two layers, each fitting one slice (64 + 64 outputs).
        p1 = conv_program(c_in=1, c_out=1, plane=8, threshold=2, leak=0, seed=1)
        g2 = LayerGeometry(LayerKind.DENSE, 1, 8, 8, 10, 1, 1)
        w2 = np.random.default_rng(2).integers(-3, 4, (10, 64))
        p2 = LayerProgram(g2, w2, threshold=3, leak=0)
        return [p1, p2]

    def test_pipelined_matches_time_multiplexed_output(self):
        programs = self.make_small_programs()
        stream = sparse_stream(shape=(5, 1, 8, 8), density=0.1, seed=5)
        out_tm, _ = SNE(SNEConfig(n_slices=2)).run_network(programs, stream)
        out_pl, _ = SNE(SNEConfig(n_slices=2)).run_network_pipelined(programs, stream)
        assert out_tm == out_pl

    def test_pipelined_cycles_take_the_max_group(self):
        programs = self.make_small_programs()
        stream = sparse_stream(shape=(5, 1, 8, 8), density=0.1, seed=6)
        _, s_tm = SNE(SNEConfig(n_slices=2)).run_network(programs, stream)
        _, s_pl = SNE(SNEConfig(n_slices=2)).run_network_pipelined(programs, stream)
        assert s_pl.cycles <= s_tm.cycles  # layers overlap in time

    def test_pipelined_rejects_oversubscription(self):
        programs = self.make_small_programs()
        stream = sparse_stream(shape=(5, 1, 8, 8))
        with pytest.raises(ValueError, match="slices"):
            SNE(SNEConfig(n_slices=1)).run_network_pipelined(programs, stream)


class TestSNEStatsEdgeCases:
    def make_stats(self, cycles, sops=10, fifo=1):
        s = SNEStats()
        s.cycles = cycles
        s.sops = sops
        s.fifo_stall_cycles = fifo
        s.active_cluster_cycles = sops
        s.gated_cluster_cycles = 2 * sops
        return s

    def test_merge_serial_sums_cycles(self):
        a, b = self.make_stats(100), self.make_stats(40)
        a.merge(b)
        assert a.cycles == 140
        assert a.sops == 20 and a.fifo_stall_cycles == 2

    def test_merge_parallel_takes_max_cycles_sums_rest(self):
        """Layer-parallel mode: concurrent groups overlap in time, so
        cycles take the max while every activity counter still adds."""
        a, b = self.make_stats(100, sops=7, fifo=3), self.make_stats(250, sops=5, fifo=4)
        a.merge(b, parallel=True)
        assert a.cycles == 250  # max, not 350
        assert a.sops == 12
        assert a.fifo_stall_cycles == 7
        assert a.active_cluster_cycles == 12
        assert a.gated_cluster_cycles == 24

    def test_merge_parallel_keeps_longer_own_cycles(self):
        a, b = self.make_stats(300), self.make_stats(40)
        a.merge(b, parallel=True)
        assert a.cycles == 300

    def test_merge_never_touches_per_layer(self):
        a, b = self.make_stats(1), self.make_stats(2)
        b.per_layer.append(("layer0", SNEStats()))
        a.merge(b)
        assert a.per_layer == []

    def test_zero_cycle_utilization_is_zero(self):
        """A run with no cluster activity must report 0.0, not divide."""
        s = SNEStats()
        assert s.utilization() == 0.0

    def test_zero_cycle_rates_are_zero(self):
        cfg = SNEConfig(n_slices=1)
        s = SNEStats()
        assert s.time_s(cfg) == 0.0
        assert s.sops_per_second(cfg) == 0.0
