"""Tests for the 4-bit quantisation path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn import (
    QuantSpec,
    dequantize,
    export_layer_quant,
    fake_quantize,
    quantize_int,
    weight_scale,
)


class TestQuantSpec:
    def test_4bit_range(self):
        spec = QuantSpec(bits=4)
        assert spec.q_min == -8 and spec.q_max == 7

    def test_8bit_range(self):
        spec = QuantSpec(bits=8)
        assert spec.q_min == -128 and spec.q_max == 127

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            QuantSpec(bits=1)
        with pytest.raises(ValueError):
            QuantSpec(bits=17)


class TestScaleAndRoundtrip:
    def test_scale_maps_max_to_qmax(self):
        w = np.array([0.1, -0.7, 0.35])
        spec = QuantSpec(4)
        scale = weight_scale(w, spec)
        q = quantize_int(w, scale, spec)
        assert q.min() >= -8 and q.max() <= 7
        assert abs(q).max() == 7

    def test_zero_weights_scale_is_one(self):
        assert weight_scale(np.zeros(5), QuantSpec(4)) == 1.0

    def test_quantize_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            quantize_int(np.ones(2), 0.0, QuantSpec(4))

    def test_dequantize_inverts_grid(self):
        spec = QuantSpec(4)
        q = np.arange(-8, 8)
        w = dequantize(q, 0.25)
        assert np.array_equal(quantize_int(w, 0.25, spec), q)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30)
    def test_quantisation_error_bounded_by_half_step(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(0, 0.5, 32)
        spec = QuantSpec(4)
        scale = weight_scale(w, spec)
        w_hat = dequantize(quantize_int(w, scale, spec), scale)
        # inside the clip range, error <= scale/2 (+ eps for fp rounding)
        inside = np.abs(w) <= spec.q_max * scale
        assert np.all(np.abs(w - w_hat)[inside] <= scale / 2 + 1e-12)


class TestFakeQuantize:
    def test_output_lies_on_grid(self):
        w = np.random.default_rng(0).normal(0, 1, 64)
        spec = QuantSpec(4)
        w_fq, _ = fake_quantize(w, spec)
        scale = weight_scale(w, spec)
        grid = np.round(w_fq / scale)
        assert np.allclose(grid * scale, w_fq)
        assert grid.min() >= -8 and grid.max() <= 7

    def test_ste_mask_blocks_clipped_weights(self):
        spec = QuantSpec(4)
        w = np.array([0.1, 5.0])
        _, mask = fake_quantize(w, spec, scale=0.1)  # 5.0/0.1 = 50 >> 7 clips
        assert mask[0] == 1.0 and mask[1] == 0.0

    def test_idempotent(self):
        w = np.random.default_rng(1).normal(0, 1, 16)
        spec = QuantSpec(4)
        scale = weight_scale(w, spec)
        w1, _ = fake_quantize(w, spec, scale)
        w2, _ = fake_quantize(w1, spec, scale)
        assert np.allclose(w1, w2)


class TestExportLayerQuant:
    def test_threshold_and_leak_rescaled(self):
        w = np.array([0.7, -0.7])
        out = export_layer_quant(w, threshold=1.0, leak=0.1)
        assert out["weights_int"].max() == 7
        assert out["threshold_int"] == round(1.0 / out["scale"])
        assert out["leak_int"] == round(0.1 / out["scale"])

    def test_threshold_at_least_one(self):
        w = np.array([0.7])
        out = export_layer_quant(w, threshold=1e-6, leak=0.0)
        assert out["threshold_int"] == 1

    def test_unreachable_threshold_raises(self):
        w = np.array([0.001, -0.001])  # tiny weights -> tiny scale -> huge th_int
        with pytest.raises(ValueError, match="ceiling"):
            export_layer_quant(w, threshold=10.0, leak=0.0)

    def test_integer_dynamics_approximate_float(self):
        # The exported integer LIF must track the float LIF up to
        # quantisation error: same spike count on a smooth input.
        from repro.snn import LIFDynamics, LIFParams, lif_forward_int

        rng = np.random.default_rng(3)
        w = rng.normal(0, 0.4, 8)
        spikes_in = (rng.random((30, 8)) < 0.3).astype(np.float64)
        currents_f = spikes_in @ w
        out = export_layer_quant(w, threshold=0.8, leak=0.05)
        currents_i = (spikes_in @ out["weights_int"]).astype(np.int64)
        s_float, _ = LIFDynamics(LIFParams(threshold=0.8, leak=0.05)).forward(
            currents_f[:, None]
        )
        s_int, _ = lif_forward_int(
            currents_i[:, None], out["threshold_int"], out["leak_int"]
        )
        # Not bit-identical (quantisation), but within 30% spike count.
        n_f, n_i = s_float.sum(), s_int.sum()
        assert abs(n_f - n_i) <= max(3, 0.3 * max(n_f, n_i))
