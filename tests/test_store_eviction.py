"""Shared result store: layout, LRU eviction, corruption, concurrency.

:class:`~repro.runtime.store.ResultStore` is the piece that lets many
runs — and many *processes* — share one cache directory, so these
tests pin down exactly the behaviours concurrent sharing relies on:

* content-addressed two-level layout (``ab/abcdef….json``);
* LRU eviction under a size cap, with hits promoting entries;
* recovery from corrupted entries *and* a corrupted recency index;
* two concurrent writer processes sharing one store without lost or
  torn entries, with and without a size cap.
"""

import json
import multiprocessing
import pathlib

import pytest

from repro.runtime import (
    JobSpec,
    ResultStore,
    canonical_json,
    dse_point_job,
    open_store,
    run_jobs,
)
from repro.runtime.store import MAX_BYTES_ENV, default_max_bytes


def blob_spec(tag: str) -> JobSpec:
    """A synthetic spec with a deterministic key (no runner needed —
    these tests drive put/get directly)."""
    return JobSpec(kind="blob", key=canonical_json({"tag": tag}))


def put_blob(store: ResultStore, tag: str, pad: int = 200) -> JobSpec:
    spec = blob_spec(tag)
    store.put(spec, {"tag": tag, "pad": "x" * pad}, 0.0)
    return spec


class TestLayout:
    def test_two_level_content_addressed_paths(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        path = store.path(spec.job_hash)
        assert path.exists()
        assert path.parent == tmp_path / spec.job_hash[:2]
        assert path.name == f"{spec.job_hash}.json"
        assert store.get(spec).value["tag"] == "a"

    def test_flat_cache_api_still_works_on_store(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [put_blob(store, t) for t in "abc"]
        assert len(store) == 3
        assert store.size_bytes() > 0
        assert store.invalidate(specs[0]) is True
        assert store.invalidate(specs[0]) is False
        assert store.clear() == 2
        assert len(store) == 0
        assert not store.index_path.exists()

    def test_real_jobs_roundtrip_through_sharded_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = [dse_point_job(n) for n in (1, 2, 4, 8)]
        cold = run_jobs(jobs, cache=store)
        warm = run_jobs(jobs, cache=ResultStore(tmp_path))  # fresh instance
        assert cold.stats.misses == 4
        assert warm.stats.hits == 4
        assert [r.value for r in warm.results] == [r.value for r in cold.results]

    def test_flat_layout_entries_adopted_on_upgrade(self, tmp_path):
        # A directory written by the pre-store flat ResultCache keeps
        # serving hits (and stays administerable) through a ResultStore.
        from repro.runtime import ResultCache

        flat = ResultCache(tmp_path)
        jobs = [dse_point_job(n) for n in (1, 2)]
        cold = run_jobs(jobs, cache=flat)
        assert (tmp_path / f"{jobs[0].job_hash}.json").exists()

        store = ResultStore(tmp_path)
        assert len(store) == 2          # visible before adoption
        warm = run_jobs(jobs, cache=store)
        assert warm.stats.hits == 2     # served, not recomputed
        assert [r.value for r in warm.results] == [r.value for r in cold.results]
        # Adopted into shards; the flat copies are gone.
        assert store.path(jobs[0].job_hash).exists()
        assert not (tmp_path / f"{jobs[0].job_hash}.json").exists()
        assert store.clear() == 2

    def test_open_store_env_defaults(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env_store"))
        monkeypatch.setenv(MAX_BYTES_ENV, "12345")
        store = open_store()
        assert store.root == tmp_path / "env_store"
        assert store.max_bytes == 12345
        monkeypatch.setenv(MAX_BYTES_ENV, "not-a-number")
        with pytest.raises(ValueError, match=MAX_BYTES_ENV):
            default_max_bytes()


class TestLRUEviction:
    def test_lru_order_under_explicit_evict(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [put_blob(store, t) for t in "abcd"]
        sizes = {s.job_hash: store.path(s.job_hash).stat().st_size for s in specs}
        store.get(specs[0])  # promote "a" to most recently used
        keep_two = sizes[specs[0].job_hash] + sizes[specs[3].job_hash]
        removed = store.evict(keep_two)
        assert removed == 2
        # Promoted "a" and freshest "d" survive; "b" and "c" (least
        # recently used) are gone.
        assert store.get(specs[0]) is not None
        assert store.get(specs[3]) is not None
        assert store.get(specs[1]) is None
        assert store.get(specs[2]) is None

    def test_cap_enforced_on_every_put(self, tmp_path):
        one_entry = len(json.dumps({"tag": "a", "pad": "x" * 200})) + 200
        store = ResultStore(tmp_path, max_bytes=3 * one_entry)
        for t in "abcdefgh":
            put_blob(store, t)
            assert store.size_bytes() <= store.max_bytes
        # The most recent put always survives its own cap enforcement.
        assert store.get(blob_spec("h")) is not None
        assert store.get(blob_spec("a")) is None

    def test_evict_to_zero_empties_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        for t in "ab":
            put_blob(store, t)
        assert store.evict(0) == 2
        assert len(store) == 0

    def test_shrink_drops_the_lru_fraction(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [put_blob(store, t) for t in "abcd"]
        store.get(specs[0])  # a is now most recent
        assert store.shrink(0.5) >= 2
        assert store.get(specs[0]) is not None  # the hot entry survives
        assert store.get(specs[1]) is None

    def test_shrink_full_fraction_empties_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        for t in "ab":
            put_blob(store, t)
        assert store.shrink(1.0) == 2
        assert len(store) == 0
        assert store.shrink(1.0) == 0  # idempotent on empty

    def test_shrink_validates_fraction(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="fraction"):
                store.shrink(bad)

    def test_evict_needs_a_target_on_uncapped_store(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="target_bytes"):
            store.evict()
        with pytest.raises(ValueError):
            store.evict(-1)
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_bytes=-5)

    def test_stale_unlogged_entries_rank_least_recent(self, tmp_path):
        import os
        import time

        store = ResultStore(tmp_path)
        old = put_blob(store, "old")
        new = put_blob(store, "new")
        store.index_path.unlink()        # lose all recency data …
        store.get(new)                   # … then log one fresh use
        # Age the unlogged entry past the freshness grace window, so it
        # reads as a leftover, not a concurrent writer's in-flight work.
        stale = time.time() - 3600
        os.utime(store.path(old.job_hash), (stale, stale))
        store.evict(store.path(new.job_hash).stat().st_size)
        assert store.get(new) is not None
        assert store.get(old) is None

    def test_fresh_unlogged_entries_evicted_last(self, tmp_path):
        # A concurrent writer's entry lands before its index touch; an
        # evictor running in that gap must not eat the freshest work.
        store = ResultStore(tmp_path)
        logged = put_blob(store, "logged")
        fresh = put_blob(store, "fresh")
        store.index_path.write_text(
            store.index_path.read_text().replace(fresh.job_hash, "")
        )
        store.evict(store.path(fresh.job_hash).stat().st_size)
        assert store.get(fresh) is not None
        assert store.get(logged) is None

    def test_compaction_bounds_index_growth(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        for _ in range(50):
            store.get(spec)
        assert len(store.index_path.read_text().splitlines()) > 50
        store.evict(store.size_bytes())  # nothing to remove, still compacts?
        # evict() returns before compaction when already under target;
        # an over-cap eviction is what rewrites the log.
        put_blob(store, "b")
        store.evict(store.path(spec.job_hash).stat().st_size)
        assert len(store.index_path.read_text().splitlines()) <= 2


class TestCorruptionRecovery:
    def test_corrupted_entry_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = dse_point_job(8)
        run_jobs([spec], cache=store)
        store.path(spec.job_hash).write_text("{ torn write")
        again = run_jobs([spec], cache=store)
        assert store.stats.corrupt == 1
        assert again.stats.misses == 1 and again.results[0].ok
        assert run_jobs([spec], cache=store).stats.hits == 1

    def test_tampered_envelope_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        path = store.path(spec.job_hash)
        entry = json.loads(path.read_text())
        entry["key"] = canonical_json({"tag": "tampered"})
        path.write_text(json.dumps(entry))
        assert store.get(spec) is None
        assert store.stats.corrupt == 1
        assert not path.exists()

    def test_corrupted_index_lines_are_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = put_blob(store, "a"), put_blob(store, "b")
        with open(store.index_path, "a") as fh:
            fh.write("%% torn line without newl")
        store.get(a)  # valid append after the torn line
        ranks = store._recency()
        assert a.job_hash in ranks and b.job_hash in ranks
        # Eviction still works and keeps the promoted entry.
        store.evict(store.path(a.job_hash).stat().st_size)
        assert store.get(a) is not None
        assert store.get(b) is None

    def test_compaction_preserves_touches_appended_mid_rewrite(self, tmp_path):
        # Regression: an append landing between the compactor's snapshot
        # read and its os.replace must survive the rewrite — losing it
        # would make that entry "unlogged", i.e. first in line for
        # eviction despite being the freshest.  Locked touches can't
        # land in that window (they share-lock the index), so this
        # simulates the unlocked fallback (no-fcntl platform / legacy
        # writer) by appending to the file directly.
        store = ResultStore(tmp_path)
        a, b = put_blob(store, "a"), put_blob(store, "b")
        real_read = store._read_index_bytes

        def racing_read():
            snapshot = real_read()
            with open(store.index_path, "a") as fh:  # unlocked promoter of "a"
                fh.write("\n" + a.job_hash + "\n")
            return snapshot

        store._read_index_bytes = racing_read
        store.compact()
        store._read_index_bytes = real_read
        ranks = store._recency()
        assert ranks[a.job_hash] > ranks[b.job_hash], "mid-rewrite append lost"
        store.evict(store.path(a.job_hash).stat().st_size)
        assert store.get(a) is not None
        assert store.get(b) is None

    def test_touch_compacts_oversized_index(self, tmp_path, monkeypatch):
        import repro.runtime.store as store_mod

        monkeypatch.setattr(store_mod, "_COMPACT_THRESHOLD_BYTES", 512)
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        for _ in range(50):
            store.get(spec)  # each hit appends; threshold forces compaction
        assert store.index_path.stat().st_size < 1024
        assert set(store._recency()) == {spec.job_hash}

    def test_hit_touches_buffered_then_flushed_for_readers(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")          # puts flush their touch
        base = store.index_path.read_text()
        store.get(spec)                      # hit touch only buffered
        assert store.index_path.read_text() == base
        assert store._pending_touches == [spec.job_hash]
        ranks = store._recency()             # index readers force a flush
        assert store._pending_touches == []
        assert ranks[spec.job_hash] > 0

    def test_debris_swept_on_evict_and_clear(self, tmp_path):
        import os
        import time

        store = ResultStore(tmp_path)
        put_blob(store, "a")
        dead = tmp_path / "tmpdead.tmp"      # SIGKILLed writer's leftover
        dead.write_text("partial")
        stale = time.time() - 7200
        os.utime(dead, (stale, stale))
        live = tmp_path / "tmplive.tmp"      # an in-flight writer's temp
        live.write_text("in-flight")
        store.evict(0)
        assert not dead.exists()             # reclaimed past the grace period
        assert live.exists()                 # fresh temp left alone
        store.clear()
        assert not live.exists()             # clear wipes unconditionally

    def test_binary_garbage_in_index_does_not_crash(self, tmp_path):
        # Regression: a non-UTF-8 byte in index.log must degrade to
        # lost recency data, not an uncaught UnicodeDecodeError that
        # kills the sweep and leaves the store un-administerable.
        store = ResultStore(tmp_path)
        a, b = put_blob(store, "a"), put_blob(store, "b")
        with open(store.index_path, "ab") as fh:
            fh.write(b"\xff\xfe binary garbage\n")
        store.get(a)                         # still promotes through it
        assert set(store._recency()) == {a.job_hash, b.job_hash}
        store.compact()                      # rewrites straight through
        assert store.evict(0) == 2           # and eviction still works
        assert len(store) == 0

    def test_missing_index_file_degrades_to_mtime_order(self, tmp_path):
        store = ResultStore(tmp_path)
        put_blob(store, "a")
        store.index_path.unlink()
        assert store._recency() == {}
        assert store.evict(0) == 1  # still able to evict everything


class TestLifetimeStats:
    """The persisted hit/miss counters behind ``repro cache stats`` and
    the serve path's cache-hit ratio."""

    def test_counters_accumulate_across_instances(self, tmp_path):
        s1 = ResultStore(tmp_path)
        spec = put_blob(s1, "a")           # 1 store
        assert s1.get(spec) is not None    # 1 hit
        s1.flush_stats()

        s2 = ResultStore(tmp_path)
        assert s2.get(spec) is not None    # 1 hit (second run)
        assert s2.get(blob_spec("absent")) is None  # 1 miss
        s2.flush_stats()

        life = ResultStore(tmp_path).lifetime_stats()
        assert life["hits"] == 2
        assert life["misses"] == 1
        assert life["stores"] == 1
        assert life["hit_rate"] == pytest.approx(2 / 3)

    def test_lifetime_includes_unflushed_deltas(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        store.get(spec)                    # hit still buffered
        life = store.lifetime_stats()      # flushes, then reads
        assert life["hits"] == 1 and life["stores"] == 1
        assert store.stats_path.exists()

    def test_clear_resets_lifetime_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        store.get(spec)
        store.flush_stats()
        store.clear()
        assert not store.stats_path.exists()
        life = ResultStore(tmp_path).lifetime_stats()
        assert life["hits"] == 0 and life["stores"] == 0
        # The clearing instance's already-merged counters don't re-merge.
        store.flush_stats()
        assert ResultStore(tmp_path).lifetime_stats()["hits"] == 0

    def test_corrupt_sidecar_degrades_to_zeroes(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        store.stats_path.write_text("{ torn")
        store.get(spec)
        life = store.lifetime_stats()      # rewrites through the damage
        assert life["hits"] == 1
        assert json.loads(store.stats_path.read_text())["hits"] == 1

    def test_sidecar_is_not_an_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        put_blob(store, "a")
        store.flush_stats()
        assert store.stats_path.exists()
        assert len(store) == 1             # stats.json never counted
        assert store.usage()["entries"] == 1
        store.evict(0)                     # ... and never evicted
        assert store.stats_path.exists()
        assert len(store) == 0

    def test_cli_stats_reports_lifetime_counters(self, tmp_path, capsys):
        from repro.runtime.cli import main

        cache_dir = str(tmp_path)
        main(["sweep", "--slices", "1,8", "--cache-dir", cache_dir, "--quiet"])
        main(["sweep", "--slices", "1,8", "--cache-dir", cache_dir, "--quiet"])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "lifetime: 2 hit(s), 2 miss(es) (hit rate 50%), 2 stored" in out

    def test_async_read_write_through(self, tmp_path):
        import asyncio

        store = ResultStore(tmp_path)
        spec = blob_spec("async")

        async def body():
            assert await store.aget(spec) is None
            await store.aput(spec, {"tag": "async"}, 0.1)
            hit = await store.aget(spec)
            assert hit is not None and hit.value["tag"] == "async"

        asyncio.run(body())
        assert store.lifetime_stats()["hits"] == 1


def _writer(root: str, writer_id: int, n: int, max_bytes) -> None:
    store = ResultStore(pathlib.Path(root), max_bytes=max_bytes)
    for i in range(n):
        put_blob(store, f"w{writer_id}-{i}")


class TestConcurrentWriters:
    N_PER_WRITER = 25

    def _run_writers(self, root, max_bytes=None) -> None:
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_writer,
                        args=(str(root), w, self.N_PER_WRITER, max_bytes))
            for w in (1, 2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

    def test_two_writers_no_lost_or_torn_entries(self, tmp_path):
        self._run_writers(tmp_path)
        store = ResultStore(tmp_path)
        assert len(store) == 2 * self.N_PER_WRITER
        for w in (1, 2):
            for i in range(self.N_PER_WRITER):
                hit = store.get(blob_spec(f"w{w}-{i}"))
                assert hit is not None, f"lost entry w{w}-{i}"
                assert hit.value["tag"] == f"w{w}-{i}"
        # Every file on disk parses as a complete envelope (no torn JSON).
        for path in store._iter_entries():
            json.loads(path.read_text())

    def test_two_writers_with_cap_stay_consistent(self, tmp_path):
        entry_size = 300  # generous upper bound per entry
        cap = 10 * entry_size
        self._run_writers(tmp_path, max_bytes=cap)
        store = ResultStore(tmp_path)
        # The cap may be overshot by at most the writes that raced the
        # final evictions — never unboundedly.
        assert store.size_bytes() <= cap + 2 * entry_size
        for path in store._iter_entries():
            entry = json.loads(path.read_text())  # no torn files
            assert {"schema", "kind", "key", "job_hash", "value"} <= set(entry)

    def test_evicting_under_a_concurrent_reader_skips_vanished(self, tmp_path):
        # Single-process stand-in for the cross-process race: an entry
        # listed by the scan disappears before it can be statted.
        store = ResultStore(tmp_path)
        for t in "abcd":
            put_blob(store, t)
        real_scan = store._scan

        def racing_scan():
            entries = real_scan()
            victim = entries[0][1]
            victim.unlink()  # a concurrent evictor beats us to it
            return entries

        store._scan = racing_scan
        store.evict(0)  # must not raise despite the vanished entry
        assert len(ResultStore(tmp_path)) == 0


class TestEntryTelemetry:
    """Per-entry hit counts + age histogram (`repro cache stats --detail`)."""

    def test_hits_are_counted_per_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = put_blob(store, "a"), put_blob(store, "b")
        for _ in range(3):
            assert store.get(a) is not None
        assert store.get(b) is not None
        detail = store.entry_stats()
        assert detail["entries"] == 2
        assert detail["tracked_hits"] == 4
        by_hash = {r["hash"]: r for r in detail["top"]}
        assert by_hash[a.job_hash]["hits"] == 3
        assert by_hash[b.job_hash]["hits"] == 1
        # Top list is sorted by hits, carries kind and compute cost.
        assert detail["top"][0]["hash"] == a.job_hash
        assert detail["top"][0]["kind"] == "blob"
        assert detail["top"][0]["duration_s"] == 0.0

    def test_counts_accumulate_across_instances(self, tmp_path):
        a = put_blob(ResultStore(tmp_path), "a")
        for _ in range(2):
            s = ResultStore(tmp_path)
            assert s.get(a) is not None
            s.flush_stats()
        detail = ResultStore(tmp_path).entry_stats()
        assert detail["tracked_hits"] == 2

    def test_age_histogram_buckets_every_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        for tag in "abc":
            put_blob(store, tag)
        hist = store.entry_stats()["age_histogram"]
        assert sum(hist.values()) == 3
        assert hist["<1m"] == 3

    def test_top_limit(self, tmp_path):
        store = ResultStore(tmp_path)
        for tag in "abcdef":
            put_blob(store, tag)
        detail = store.entry_stats(limit=2)
        assert len(detail["top"]) == 2 and detail["entries"] == 6

    def test_eviction_prunes_usage_records(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = [put_blob(store, t) for t in "abcd"]
        for spec in specs:
            assert store.get(spec) is not None
        store.flush_stats()
        assert len(store._read_usage()) == 4
        store.evict(0)  # everything goes
        assert store._read_usage() == {}
        assert store.entry_stats()["entries"] == 0

    def test_clear_removes_usage_sidecar(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        assert store.get(spec) is not None
        store.flush_stats()
        assert store.usage_path.exists()
        store.clear()
        assert not store.usage_path.exists()
        assert store.entry_stats()["tracked_hits"] == 0

    def test_corrupt_usage_sidecar_degrades_to_empty(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        store.usage_path.write_text("not json at all")
        assert store.get(spec) is not None  # reads still work
        store.flush_stats()                 # merge over the corrupt file
        detail = store.entry_stats()
        assert detail["top"][0]["hits"] == 1

    def test_failed_usage_merge_never_double_counts_lifetime_stats(self, tmp_path):
        """A usage-sidecar write failure after the stats merge landed
        must not re-add the same counter delta on the next flush."""
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        assert store.get(spec) is not None
        original = store._write_usage
        calls = {"n": 0}

        def flaky(usage):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("disk full")
            return original(usage)

        store._write_usage = flaky
        store.flush_stats()  # stats merge lands, usage merge fails
        store.flush_stats()  # retry: usage merges, stats must not re-add
        totals = store._read_lifetime()
        assert totals["hits"] == 1 and totals["stores"] == 1
        assert store._read_usage() == {spec.job_hash: 1}

    def test_buffered_hits_for_evicted_entries_are_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        assert store.get(spec) is not None  # hit buffered, not yet merged
        store.evict(0)                      # entry gone before the flush
        store.flush_stats()
        assert store._read_usage() == {}

    def test_entry_stats_prunes_dead_usage_records(self, tmp_path):
        import json as _json

        store = ResultStore(tmp_path)
        put_blob(store, "a")
        dead = "f" * 64
        store.usage_path.write_text(_json.dumps({dead: 7}))
        detail = store.entry_stats()
        assert detail["tracked_hits"] == 0
        assert dead not in store._read_usage()

    def test_entry_stats_tolerates_non_dict_entry_json(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = put_blob(store, "a")
        store.path(spec.job_hash).write_text("[]")  # valid JSON, not an object
        detail = store.entry_stats()
        assert detail["top"][0]["kind"] is None
        assert detail["top"][0]["duration_s"] is None
