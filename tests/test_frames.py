"""Tests for event-frame accumulation and time rebinning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventStream
from repro.events.frames import (
    accumulate_frames,
    polarity_difference_frames,
    rebin_time,
)


def make_stream(seed=0, shape=(12, 2, 6, 6), density=0.15):
    rng = np.random.default_rng(seed)
    return EventStream.from_dense((rng.random(shape) < density).astype(np.uint8))


class TestAccumulateFrames:
    def test_frame_count_and_shape(self):
        frames = accumulate_frames(make_stream(), window=4)
        assert frames.shape == (3, 2, 6, 6)

    def test_uneven_window_rounds_up(self):
        frames = accumulate_frames(make_stream(shape=(10, 2, 6, 6)), window=4)
        assert frames.shape[0] == 3  # 4 + 4 + 2

    def test_total_count_preserved(self):
        s = make_stream()
        frames = accumulate_frames(s, window=3)
        assert int(frames.sum()) == len(s)

    def test_window_one_equals_dense(self):
        s = make_stream()
        frames = accumulate_frames(s, window=1)
        assert np.array_equal(frames, s.to_dense().astype(np.uint16))

    def test_counts_accumulate_within_window(self):
        s = EventStream([0, 1], [0, 0], [2, 2], [3, 3], (2, 1, 4, 4))
        frames = accumulate_frames(s, window=2)
        assert frames[0, 0, 3, 2] == 2

    def test_empty_stream(self):
        frames = accumulate_frames(EventStream.empty((6, 2, 4, 4)), window=2)
        assert frames.shape == (3, 2, 4, 4) and frames.sum() == 0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            accumulate_frames(make_stream(), window=0)


class TestRebinTime:
    def test_downbin_shrinks_envelope(self):
        s = make_stream()
        out = rebin_time(s, 4)
        assert out.n_steps == 4
        assert len(out) <= len(s)  # collisions collapse

    def test_upbin_preserves_count(self):
        s = make_stream()
        out = rebin_time(s, 24)
        assert len(out) == len(s)  # no collisions when spreading out

    def test_identity_rebin(self):
        s = make_stream()
        assert rebin_time(s, s.n_steps) == s

    def test_time_order_preserved(self):
        s = EventStream([1, 9], [0, 0], [1, 2], [1, 2], (10, 1, 4, 4))
        out = rebin_time(s, 5)
        early = out.events_at(0)
        late = out.events_at(4)
        assert int(early.x[0]) == 1 and int(late.x[0]) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            rebin_time(make_stream(), 0)

    @given(seed=st.integers(0, 2**16), n_new=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_rebinned_times_in_range(self, seed, n_new):
        out = rebin_time(make_stream(seed=seed), n_new)
        assert out.n_steps == n_new
        if len(out):
            assert out.t.max() < n_new


class TestPolarityDifference:
    def test_signed_output(self):
        s = EventStream([0, 0], [1, 0], [1, 2], [1, 1], (1, 2, 4, 4))
        diff = polarity_difference_frames(s, window=1)
        assert diff[0, 1, 1] == 1  # ON
        assert diff[0, 1, 2] == -1  # OFF

    def test_requires_two_channels(self):
        with pytest.raises(ValueError, match="2-channel"):
            polarity_difference_frames(EventStream.empty((2, 1, 4, 4)), 1)

    def test_balanced_events_cancel(self):
        s = EventStream([0, 0], [0, 1], [2, 2], [2, 2], (1, 2, 4, 4))
        diff = polarity_difference_frames(s, window=1)
        assert diff[0, 2, 2] == 0
