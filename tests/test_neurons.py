"""Tests for LIF (float + integer) and SRM neuron dynamics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn import (
    LIFDynamics,
    LIFParams,
    ResetMode,
    SRMDynamics,
    SRMParams,
    lif_forward_int,
    linear_decay,
)


class TestLinearDecay:
    def test_moves_toward_zero(self):
        assert linear_decay(np.array(2.0), 0.5) == pytest.approx(1.5)
        assert linear_decay(np.array(-2.0), 0.5) == pytest.approx(-1.5)

    def test_saturates_at_zero(self):
        assert linear_decay(np.array(0.3), 0.5) == pytest.approx(0.0)
        assert linear_decay(np.array(-0.3), 0.5) == pytest.approx(0.0)

    def test_zero_leak_is_identity(self):
        v = np.array([1.0, -2.0, 0.0])
        assert np.array_equal(linear_decay(v, 0.0), v)


class TestLIFForward:
    def test_fires_when_threshold_crossed(self):
        dyn = LIFDynamics(LIFParams(threshold=1.0, leak=0.0))
        currents = np.array([[0.6], [0.6], [0.0]])
        spikes, _ = dyn.forward(currents)
        assert list(spikes[:, 0]) == [0.0, 1.0, 0.0]

    def test_reset_to_zero(self):
        dyn = LIFDynamics(LIFParams(threshold=1.0, leak=0.0, reset=ResetMode.TO_ZERO))
        currents = np.array([[1.5], [0.4]])
        spikes, cache = dyn.forward(currents)
        assert spikes[0, 0] == 1.0
        assert cache["v_post"][0, 0] == 0.0
        assert cache["v_pre"][1, 0] == pytest.approx(0.4)

    def test_reset_subtract(self):
        dyn = LIFDynamics(LIFParams(threshold=1.0, leak=0.0, reset=ResetMode.SUBTRACT))
        currents = np.array([[1.5]])
        _, cache = dyn.forward(currents)
        assert cache["v_post"][0, 0] == pytest.approx(0.5)

    def test_leak_subtracts_each_step(self):
        dyn = LIFDynamics(LIFParams(threshold=10.0, leak=0.1))
        currents = np.array([[0.5], [0.0], [0.0]])
        _, cache = dyn.forward(currents)
        assert cache["v_pre"][1, 0] == pytest.approx(0.4)
        assert cache["v_pre"][2, 0] == pytest.approx(0.3)

    def test_membrane_never_oscillates_through_zero(self):
        dyn = LIFDynamics(LIFParams(threshold=10.0, leak=1.0))
        currents = np.zeros((5, 1))
        currents[0, 0] = 0.5
        _, cache = dyn.forward(currents)
        assert (cache["v_pre"][1:] >= 0).all()

    def test_v_clip_bounds_membrane(self):
        dyn = LIFDynamics(LIFParams(threshold=100.0, leak=0.0, v_clip=2.0))
        currents = np.ones((5, 1)) * 3.0
        _, cache = dyn.forward(currents)
        assert cache["v_pre"].max() <= 2.0

    def test_batch_and_spatial_shapes(self):
        dyn = LIFDynamics()
        currents = np.random.default_rng(0).random((4, 2, 3, 5, 5))
        spikes, _ = dyn.forward(currents)
        assert spikes.shape == currents.shape
        assert set(np.unique(spikes)).issubset({0.0, 1.0})

    def test_param_validation(self):
        with pytest.raises(ValueError):
            LIFParams(threshold=0.0)
        with pytest.raises(ValueError):
            LIFParams(leak=-0.1)
        with pytest.raises(ValueError):
            LIFParams(v_clip=0.0)


class TestLIFBackward:
    def test_gradient_shape(self):
        dyn = LIFDynamics()
        currents = np.random.default_rng(0).random((6, 2, 4))
        spikes, cache = dyn.forward(currents)
        grad = dyn.backward(np.ones_like(spikes), cache)
        assert grad.shape == currents.shape

    def test_gradient_flows_backward_in_time(self):
        # A spike at t=2 caused by charge injected at t=0 must send
        # gradient to the t=0 current.
        dyn = LIFDynamics(LIFParams(threshold=1.0, leak=0.0))
        currents = np.array([[0.5], [0.3], [0.3]])
        spikes, cache = dyn.forward(currents)
        assert spikes[2, 0] == 1.0
        grad_out = np.zeros_like(spikes)
        grad_out[2, 0] = 1.0
        grad = dyn.backward(grad_out, cache)
        assert grad[0, 0] > 0.0

    def test_reset_blocks_gradient_across_spike(self):
        # With reset-to-zero, membrane history before a spike cannot
        # influence the membrane after it (detached reset).
        dyn = LIFDynamics(LIFParams(threshold=1.0, leak=0.0))
        currents = np.array([[1.5], [0.5], [0.6]])  # spike at t=0, spike at t=2
        spikes, cache = dyn.forward(currents)
        assert spikes[0, 0] == 1.0 and spikes[2, 0] == 1.0
        grad_out = np.zeros_like(spikes)
        grad_out[2, 0] = 1.0
        grad = dyn.backward(grad_out, cache)
        # Gradient to t=0 goes only through the (weak) surrogate at t=0's
        # spike; the direct membrane path is cut by the reset.
        assert abs(grad[0, 0]) < abs(grad[1, 0])

    def test_quiescent_leaked_membrane_blocks_gradient(self):
        # If the membrane fully decays to zero between two steps, no
        # gradient can flow across the gap (the decay saturates).
        dyn = LIFDynamics(LIFParams(threshold=5.0, leak=1.0))
        currents = np.array([[0.5], [0.0], [0.0], [3.0]])
        spikes, cache = dyn.forward(currents)
        grad_out = np.zeros_like(spikes)
        grad_out[3, 0] = 1.0
        grad = dyn.backward(grad_out, cache)
        assert grad[0, 0] == 0.0

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_zero_upstream_gradient_gives_zero(self, seed):
        dyn = LIFDynamics()
        currents = np.random.default_rng(seed).random((5, 3))
        spikes, cache = dyn.forward(currents)
        grad = dyn.backward(np.zeros_like(spikes), cache)
        assert np.all(grad == 0.0)


class TestLIFInteger:
    def test_matches_float_path_on_integer_inputs(self):
        rng = np.random.default_rng(0)
        currents = rng.integers(-3, 4, size=(12, 6)).astype(np.int64)
        spikes_int, _ = lif_forward_int(currents, threshold=5, leak=1, state_bits=8)
        dyn = LIFDynamics(LIFParams(threshold=5.0, leak=1.0, v_clip=127.0))
        spikes_f, _ = dyn.forward(currents.astype(np.float64))
        assert np.array_equal(spikes_int.astype(np.float64), spikes_f)

    def test_state_saturates(self):
        currents = np.full((60, 1), 5, dtype=np.int64)
        _, v = lif_forward_int(currents, threshold=1000, leak=0, state_bits=8)
        # threshold unreachable, state must pin at +127
        assert v[0] == 127

    def test_state_saturates_negative(self):
        currents = np.full((60, 1), -5, dtype=np.int64)
        _, v = lif_forward_int(currents, threshold=100, leak=0, state_bits=8)
        assert v[0] == -128

    def test_reset_to_zero_after_fire(self):
        currents = np.array([[10], [0]], dtype=np.int64)
        spikes, v = lif_forward_int(currents, threshold=8, leak=0)
        assert spikes[0, 0] == 1 and v[0] == 0

    def test_subtract_reset(self):
        currents = np.array([[10]], dtype=np.int64)
        _, v = lif_forward_int(currents, threshold=8, leak=0, reset=ResetMode.SUBTRACT)
        assert v[0] == 2

    def test_leak_decays_toward_zero_integer(self):
        currents = np.zeros((4, 1), dtype=np.int64)
        currents[0, 0] = 5
        spikes, v = lif_forward_int(currents, threshold=100, leak=2)
        assert spikes.sum() == 0 and v[0] == 0  # 5 -> 3 -> 1 -> 0 (saturating)

    def test_parameter_validation(self):
        z = np.zeros((1, 1), dtype=np.int64)
        with pytest.raises(ValueError):
            lif_forward_int(z, threshold=0, leak=0)
        with pytest.raises(ValueError):
            lif_forward_int(z, threshold=1, leak=-1)
        with pytest.raises(ValueError):
            lif_forward_int(z, threshold=1, leak=0, state_bits=1)

    @given(seed=st.integers(0, 2**16), leak=st.integers(0, 3), th=st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_property_spikes_are_binary_and_state_bounded(self, seed, leak, th):
        rng = np.random.default_rng(seed)
        currents = rng.integers(-8, 8, size=(10, 4))
        spikes, v = lif_forward_int(currents, threshold=th, leak=leak)
        assert set(np.unique(spikes)).issubset({0, 1})
        assert v.min() >= -128 and v.max() <= 127
        # After a FIRE the membrane is below threshold (reset-to-zero).
        assert (v < th).all() or spikes[-1].any()


class TestSRM:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            SRMParams(threshold=0)
        with pytest.raises(ValueError):
            SRMParams(tau_mem=0)

    def test_fires_on_strong_input(self):
        dyn = SRMDynamics(SRMParams(threshold=0.5))
        currents = np.zeros((8, 1))
        currents[0, 0] = 3.0
        spikes, _ = dyn.forward(currents)
        assert spikes.sum() >= 1

    def test_membrane_kernel_is_smooth_rise_and_decay(self):
        dyn = SRMDynamics(SRMParams(threshold=100.0))  # never fires
        currents = np.zeros((20, 1))
        currents[0, 0] = 1.0
        _, cache = dyn.forward(currents)
        u = cache["u"][:, 0]
        peak = u.argmax()
        assert 0 < peak < 19  # rises then decays (double-exponential shape)
        assert u[-1] < u[peak]

    def test_refractory_suppresses_immediate_refire(self):
        params = SRMParams(threshold=0.5, refractory_scale=5.0)
        dyn = SRMDynamics(params)
        currents = np.ones((10, 1)) * 0.6
        spikes, _ = dyn.forward(currents)
        # strong refractory: cannot fire on consecutive steps
        s = spikes[:, 0]
        assert not np.any(s[1:] * s[:-1])

    def test_backward_shapes_and_time_flow(self):
        dyn = SRMDynamics(SRMParams(threshold=0.8))
        currents = np.random.default_rng(1).random((6, 2, 3)) * 0.5
        spikes, cache = dyn.forward(currents)
        grad_out = np.zeros_like(spikes)
        grad_out[-1] = 1.0
        grad = dyn.backward(grad_out, cache)
        assert grad.shape == currents.shape
        assert np.abs(grad[0]).sum() > 0.0  # synaptic kernel spans time

    def test_zero_gradient_passthrough(self):
        dyn = SRMDynamics()
        currents = np.random.default_rng(2).random((5, 4))
        spikes, cache = dyn.forward(currents)
        assert np.all(dyn.backward(np.zeros_like(spikes), cache) == 0.0)
