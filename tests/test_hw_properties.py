"""Cross-cutting hardware invariants (property-based).

These tests pin down relationships *between* subsystems that no single
unit test sees: SOP conservation against an independent receptive-field
count, schedule invariance (slices/passes/modes change timing, never
results), trace/stats consistency, and bit-width safety under random
traffic.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventStream
from repro.hw import (
    SNE,
    ActivityTrace,
    LayerGeometry,
    LayerKind,
    LayerProgram,
    SNEConfig,
    random_case,
    run_case,
)


def random_conv(rng, c_in=2, c_out=4, plane=8):
    g = LayerGeometry(
        LayerKind.CONV, c_in, plane, plane, c_out, plane, plane, kernel=3, padding=1
    )
    return LayerProgram(
        g, rng.integers(-2, 3, (c_out, c_in, 3, 3)),
        threshold=int(rng.integers(2, 10)), leak=int(rng.integers(0, 2)),
    )


def random_stream(rng, shape=(6, 2, 8, 8), density=0.1):
    return EventStream.from_dense((rng.random(shape) < density).astype(np.uint8))


class TestSOPConservation:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_sops_equal_independent_receptive_field_count(self, seed):
        """SOPs reported by the simulator == sum of per-event receptive
        field sizes computed directly from the geometry."""
        rng = np.random.default_rng(seed)
        program = random_conv(rng)
        stream = random_stream(rng)
        _, stats = SNE(SNEConfig(n_slices=2)).run_layer(program, stream)
        expected = 0
        for t, ch, x, y in zip(stream.t, stream.ch, stream.x, stream.y):
            idx, _ = program.geometry.affected_outputs(
                int(ch), int(x), int(y), program.weights
            )
            expected += idx.size
        assert stats.sops == expected

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_output_events_bounded_by_neuron_steps(self, seed):
        rng = np.random.default_rng(seed)
        program = random_conv(rng)
        stream = random_stream(rng, density=0.2)
        out, stats = SNE(SNEConfig(n_slices=1)).run_layer(program, stream)
        # A neuron fires at most once per timestep.
        assert len(out) <= program.geometry.n_outputs * stream.n_steps
        assert stats.output_events == len(out)


class TestScheduleInvariance:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_fifo_depth_never_changes_outputs(self, seed):
        rng = np.random.default_rng(seed)
        program = random_conv(rng)
        stream = random_stream(rng, density=0.15)
        outs = [
            SNE(SNEConfig(n_slices=1, cluster_fifo_depth=d)).run_layer(program, stream)[0]
            for d in (1, 8, 64)
        ]
        assert outs[0] == outs[1] == outs[2]

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_pipelined_equals_tiled_on_random_two_layer_nets(self, seed):
        rng = np.random.default_rng(seed)
        p1 = LayerProgram(
            LayerGeometry(LayerKind.CONV, 1, 8, 8, 1, 8, 8, kernel=3, padding=1),
            rng.integers(-2, 4, (1, 1, 3, 3)),
            threshold=int(rng.integers(2, 6)),
            leak=int(rng.integers(0, 2)),
        )
        n_out = int(rng.integers(2, 12))
        p2 = LayerProgram(
            LayerGeometry(LayerKind.DENSE, 1, 8, 8, n_out, 1, 1),
            rng.integers(-2, 3, (n_out, 64)),
            threshold=int(rng.integers(2, 8)),
            leak=0,
        )
        stream = random_stream(rng, shape=(5, 1, 8, 8), density=0.15)
        cfg = SNEConfig(n_slices=2)
        out_tm, s_tm = SNE(cfg).run_network([p1, p2], stream)
        out_pl, s_pl = SNE(cfg).run_network_pipelined([p1, p2], stream)
        assert out_tm == out_pl
        assert s_tm.sops == s_pl.sops
        assert s_pl.cycles <= s_tm.cycles

    def test_cycles_per_pass_independent_of_content(self):
        """Timing depends on event COUNT, never on event VALUES — the
        data-independence that makes the 48-cycle window a constant."""
        g = LayerGeometry(LayerKind.CONV, 1, 8, 8, 2, 8, 8, kernel=3, padding=1)
        rng = np.random.default_rng(0)
        stream_a = EventStream([0, 1, 2], [0] * 3, [1, 2, 3], [1, 2, 3], (4, 1, 8, 8))
        stream_b = EventStream([0, 1, 2], [0] * 3, [6, 5, 4], [6, 5, 4], (4, 1, 8, 8))
        cycles = []
        for stream in (stream_a, stream_b):
            prog = LayerProgram(g, rng.integers(-2, 3, (2, 1, 3, 3)), threshold=5, leak=1)
            _, stats = SNE(SNEConfig(n_slices=1)).run_layer(prog, stream)
            cycles.append(stats.cycles)
        assert cycles[0] == cycles[1]


class TestTraceConsistency:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_trace_totals_match_stats_on_random_runs(self, seed):
        rng = np.random.default_rng(seed)
        program = random_conv(rng)
        stream = random_stream(rng)
        trace = ActivityTrace()
        cfg = SNEConfig(n_slices=1)
        _, stats = SNE(cfg).run_layer(program, stream, trace=trace)
        totals = trace.totals()
        assert totals["sops"] == stats.sops
        assert totals["output_events"] == stats.output_events
        assert totals["input_events"] == len(stream)
        assert totals["cycles"] == stats.cycles - stats.passes * cfg.cycles_per_reset

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_tracing_does_not_perturb_results(self, seed):
        rng = np.random.default_rng(seed)
        program = random_conv(rng)
        stream = random_stream(rng)
        out_plain, s_plain = SNE(SNEConfig(n_slices=1)).run_layer(program, stream)
        out_traced, s_traced = SNE(SNEConfig(n_slices=1)).run_layer(
            program, stream, trace=ActivityTrace()
        )
        assert out_plain == out_traced
        assert s_plain.cycles == s_traced.cycles


class TestBitWidthSafety:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_cluster_states_stay_in_register_range(self, seed):
        """No traffic pattern may escape the 8-bit membrane register."""
        rng = np.random.default_rng(seed)
        g = LayerGeometry(LayerKind.DENSE, 1, 2, 2, 16, 1, 1)
        prog = LayerProgram(
            g, rng.integers(-8, 8, (16, 4)), threshold=int(rng.integers(1, 127)),
            leak=int(rng.integers(0, 4)),
        )
        stream = random_stream(rng, shape=(20, 1, 2, 2), density=0.6)
        sne = SNE(SNEConfig(n_slices=1))
        sne.run_layer(prog, stream)
        for sl in sne.slices:
            for cluster in sl.clusters:
                cluster.check_state_bounds()

    def test_fuzzer_corpus_regression(self):
        """A fixed fuzz corpus as a cheap regression net for the model."""
        for seed in range(30, 45):
            result = run_case(random_case(seed))
            assert result.matched, f"seed {seed}"
