"""Tests for the slice model: dispatch, gating, fire scan, accounting."""

import numpy as np
import pytest

from repro.hw import LayerGeometry, LayerKind, LayerProgram, SNEConfig, Slice


def small_program(out_channels=1, plane=8, threshold=4, leak=0, weight=2):
    g = LayerGeometry(
        LayerKind.CONV, 1, plane, plane, out_channels, plane, plane,
        kernel=3, stride=1, padding=1,
    )
    w = np.full((out_channels, 1, 3, 3), weight, dtype=np.int64)
    return LayerProgram(g, w, threshold=threshold, leak=leak)


def make_slice(config=None):
    return Slice(config or SNEConfig(n_slices=1), slice_idx=0)


class TestConfigure:
    def test_requires_program_before_events(self):
        sl = make_slice()
        with pytest.raises(RuntimeError, match="not configured"):
            sl.process_update(0, 0, 0, 0)

    def test_rejects_oversized_interval(self):
        sl = make_slice()
        with pytest.raises(ValueError, match="holds"):
            sl.configure(small_program(), 0, 2000)

    def test_configure_resets_state_and_stats(self):
        sl = make_slice()
        prog = small_program()
        sl.configure(prog, 0, 64)
        sl.process_update(0, 0, 4, 4)
        sl.configure(prog, 0, 64)
        assert sl.stats.update_events == 0
        assert sl.membrane_snapshot().max() == 0


class TestUpdateDispatch:
    def test_update_costs_the_sequencer_window(self):
        cfg = SNEConfig(n_slices=1)
        sl = make_slice(cfg)
        sl.configure(small_program(), 0, 64)
        cycles = sl.process_update(0, 0, 4, 4)
        assert cycles == cfg.cycles_per_event

    def test_sops_count_receptive_field(self):
        sl = make_slice()
        sl.configure(small_program(plane=8), 0, 64)
        sl.process_update(0, 0, 4, 4)  # interior event: 3x3 window...
        # ...but only neurons inside [0, 64) = rows 0..7 of an 8x8 plane
        assert sl.stats.sops == 9

    def test_events_outside_interval_are_filtered(self):
        sl = make_slice()
        prog = small_program(plane=16)  # 256 outputs, keep first 64
        sl.configure(prog, 0, 64)
        # Event at bottom-right: its receptive field lies in rows 14-15,
        # linear indices >= 14*16 = 224, all outside [0, 64).
        sl.process_update(0, 0, 15, 15)
        assert sl.stats.sops == 0

    def test_gating_counted_for_untouched_clusters(self):
        cfg = SNEConfig(n_slices=1)
        sl = make_slice(cfg)
        sl.configure(small_program(plane=8), 0, 64)  # only cluster 0 used
        sl.process_update(0, 0, 4, 4)
        gated = [c.stats.events_gated for c in sl.clusters]
        assert gated[0] == 0 and all(g == 1 for g in gated[1:])

    def test_sequencer_overrun_accounted(self):
        # 64 output channels of a 1x1 plane: one event updates 64 neurons
        # in ... different clusters; force same cluster with a dense layer.
        g = LayerGeometry(LayerKind.DENSE, 1, 1, 1, 64, 1, 1)
        w = np.ones((64, 1), dtype=np.int64)
        prog = LayerProgram(g, w, threshold=10, leak=0)
        cfg = SNEConfig(n_slices=1, cycles_per_event=48)
        sl = make_slice(cfg)
        sl.configure(prog, 0, 64)
        cycles = sl.process_update(0, 0, 0, 0)  # 64 updates in one cluster
        assert cycles == 48 + 16
        assert sl.stats.sequencer_overrun_cycles == 16


class TestFire:
    def test_fire_emits_absolute_coordinates(self):
        sl = make_slice()
        sl.configure(small_program(plane=8, threshold=2, weight=3), 0, 64)
        sl.process_update(0, 0, 3, 2)  # rows 1..3, cols 2..4 get +3
        events, cycles = sl.process_fire(0)
        assert cycles == sl.config.cycles_per_fire
        assert len(events) == 9
        ts, chs, xs, ys = zip(*events)
        assert set(ts) == {0} and set(chs) == {0}
        assert set(ys) == {1, 2, 3} and set(xs) == {2, 3, 4}

    def test_fire_respects_threshold(self):
        sl = make_slice()
        sl.configure(small_program(threshold=4, weight=3), 0, 64)
        sl.process_update(0, 0, 4, 4)
        events, _ = sl.process_fire(0)
        assert events == []  # 3 < 4

    def test_fire_applies_leak(self):
        sl = make_slice()
        sl.configure(small_program(threshold=3, leak=1, weight=3), 0, 64)
        sl.process_update(0, 0, 4, 4)
        events, _ = sl.process_fire(1)  # one elapsed step: 3 - 1 = 2 < 3
        assert events == []

    def test_multi_channel_coordinates(self):
        cfg = SNEConfig(n_slices=1)
        sl = make_slice(cfg)
        prog = small_program(out_channels=2, plane=4, threshold=1, weight=3)
        sl.configure(prog, 0, 32)
        sl.process_update(0, 0, 2, 2)
        events, _ = sl.process_fire(0)
        chs = {e[1] for e in events}
        assert chs == {0, 1}

    def test_fifo_stalls_on_dense_fire_burst(self):
        # 1024 neurons all firing in one step overwhelm the 64-cycle
        # drain window plus the shallow FIFOs: the scan must stall.
        cfg = SNEConfig(n_slices=1, cluster_fifo_depth=1)
        sl = make_slice(cfg)
        sl.configure(small_program(plane=16, out_channels=4, threshold=1, weight=7), 0, 1024)
        for x in range(16):
            for y in range(16):
                sl.process_update(0, 0, x, y)
        events, cycles = sl.process_fire(0)
        assert len(events) == 1024
        assert sl.stats.fifo_stall_cycles > 0
        assert cycles > cfg.cycles_per_fire

    def test_reset_then_fire_is_silent(self):
        sl = make_slice()
        sl.configure(small_program(threshold=1, weight=7), 0, 64)
        sl.process_update(0, 0, 4, 4)
        sl.process_reset(0)
        events, _ = sl.process_fire(0)
        assert events == []


class TestAccounting:
    def test_busy_cycles_accumulate(self):
        cfg = SNEConfig(n_slices=1)
        sl = make_slice(cfg)
        sl.configure(small_program(), 0, 64)
        sl.process_reset(0)
        sl.process_update(0, 0, 4, 4)
        sl.process_fire(0)
        expected = cfg.cycles_per_reset + cfg.cycles_per_event + cfg.cycles_per_fire
        assert sl.stats.busy_cycles == expected

    def test_utilization_between_zero_and_one(self):
        sl = make_slice()
        sl.configure(small_program(), 0, 64)
        sl.process_update(0, 0, 4, 4)
        assert 0.0 < sl.utilization() <= 1.0

    def test_gated_plus_active_equals_total(self):
        cfg = SNEConfig(n_slices=1)
        sl = make_slice(cfg)
        sl.configure(small_program(), 0, 64)
        sl.process_update(0, 0, 4, 4)
        s = sl.stats
        total = cfg.clusters_per_slice * cfg.cycles_per_event
        assert s.active_cluster_cycles + s.gated_cluster_cycles == total
