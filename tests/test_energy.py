"""Tests for the area/power/efficiency models against the paper's numbers."""

import pytest

from repro.energy import (
    COMPONENTS,
    DATASET_EVENT_ANCHORS,
    FIG4_ANCHORS,
    FIG4_SLICES,
    FIG5A_TOTAL_MW,
    AreaModel,
    EfficiencyModel,
    GF22FDX,
    PowerModel,
    TechnologyParams,
)
from repro.hw import PAPER_CONFIG, SNEConfig, SNEStats


class TestTechnology:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TechnologyParams(nd2_area_um2=0)
        with pytest.raises(ValueError):
            TechnologyParams(nominal_voltage=0)
        with pytest.raises(ValueError):
            TechnologyParams(leakage_uw_per_kge=-1)

    def test_energy_scale_identity_at_nominal(self):
        assert GF22FDX.energy_scale(0.8) == pytest.approx(1.0)

    def test_energy_scale_monotone(self):
        assert GF22FDX.energy_scale(0.9) > 1.0 > GF22FDX.energy_scale(0.7)

    def test_voltage_validation(self):
        with pytest.raises(ValueError):
            GF22FDX.energy_scale(0)
        with pytest.raises(ValueError):
            GF22FDX.leakage_scale(-1)

    def test_kge_conversion(self):
        assert GF22FDX.kge_to_um2(1.0) == pytest.approx(1000 * GF22FDX.nd2_area_um2)
        with pytest.raises(ValueError):
            GF22FDX.kge_to_um2(-1)


class TestAreaModel:
    @pytest.fixture(scope="class")
    def model(self):
        return AreaModel()

    @pytest.mark.parametrize("n", FIG4_SLICES)
    def test_anchor_exact_at_synthesised_configs(self, model, n):
        breakdown = model.breakdown_kge(n)
        idx = FIG4_SLICES.index(n)
        for component in COMPONENTS:
            assert breakdown[component] == FIG4_ANCHORS[component][idx]

    def test_memory_dominates(self, model):
        """'Most of the area is occupied by latch-based memories.'"""
        for n in FIG4_SLICES:
            breakdown = model.breakdown_kge(n)
            assert breakdown["memory"] == max(breakdown.values())

    def test_dma_cost_constant(self, model):
        assert len({model.breakdown_kge(n)["streamers"] for n in FIG4_SLICES}) == 1

    def test_dma_fraction_shrinks(self, model):
        """'The fixed cost of the DMAs is progressively absorbed.'"""
        fractions = [model.dma_fraction(n) for n in FIG4_SLICES]
        assert all(a > b for a, b in zip(fractions, fractions[1:]))

    def test_neuron_area_matches_table2(self, model):
        assert model.neuron_area_um2() == pytest.approx(19.9, rel=0.01)

    def test_interpolation_for_other_slice_counts(self, model):
        # 3 slices lies between the 2- and 4-slice anchors.
        assert model.total_kge(2) < model.total_kge(3) < model.total_kge(4)

    def test_normalized_breakdown_sums_to_one(self, model):
        assert sum(model.normalized_breakdown(8).values()) == pytest.approx(1.0)

    def test_rejects_bad_slice_count(self, model):
        with pytest.raises(ValueError):
            model.breakdown_kge(0)

    def test_total_area_roughly_proportional(self, model):
        """Slices dominate: doubling slices nearly doubles the area."""
        ratio = model.total_kge(8) / model.total_kge(4)
        assert 1.8 < ratio < 2.0  # sub-2x because the DMAs are fixed


class TestPowerModel:
    @pytest.fixture(scope="class")
    def model(self):
        return PowerModel()

    @pytest.mark.parametrize("n", FIG4_SLICES)
    def test_fig5a_totals_anchor_exact(self, model, n):
        assert model.fig5a_breakdown(n).total_mw == pytest.approx(FIG5A_TOTAL_MW[n])

    def test_total_at_8_slices_matches_table2(self, model):
        assert model.fig5a_breakdown(8).total_mw == pytest.approx(11.29, rel=0.001)

    def test_dynamic_dominates(self, model):
        """'Dynamic power significantly dominates' (§IV-A.2)."""
        for n in FIG4_SLICES:
            b = model.fig5a_breakdown(n)
            assert b.dynamic_mw > 10 * b.leakage_mw

    def test_leakage_grows_with_area(self, model):
        leaks = [model.leakage_mw(n) for n in FIG4_SLICES]
        assert all(a < b for a, b in zip(leaks, leaks[1:]))

    def test_gating_reduces_dynamic_power(self, model):
        full = model.dynamic_mw(8, utilization=1.0)
        idle = model.dynamic_mw(8, utilization=0.0)
        assert idle < full
        assert idle > 0  # the gating residual and DMA floor remain

    def test_utilization_validation(self, model):
        with pytest.raises(ValueError):
            model.dynamic_mw(8, utilization=1.5)

    def test_voltage_raises_power(self, model):
        assert model.total_mw(8, 1.0, voltage=0.9) > model.total_mw(8, 1.0, voltage=0.8)

    def test_energy_from_stats(self, model):
        cfg = SNEConfig(n_slices=8)
        stats = SNEStats(cycles=400_000, active_cluster_cycles=1, gated_cluster_cycles=0)
        # 400k cycles at 400 MHz = 1 ms at ~11.29 mW -> ~11.3 uJ
        energy = model.energy_uj(stats, cfg)
        assert energy == pytest.approx(11.29, rel=0.02)


class TestEfficiencyModel:
    @pytest.fixture(scope="class")
    def model(self):
        return EfficiencyModel()

    def test_peak_performance_fig5b(self, model):
        expected = {1: 6.4, 2: 12.8, 4: 25.6, 8: 51.2}
        for n, gsops in expected.items():
            assert model.performance_gsops(PAPER_CONFIG.with_slices(n)) == pytest.approx(gsops)

    def test_energy_per_sop_8_slices(self, model):
        assert model.energy_per_sop_pj(PAPER_CONFIG) == pytest.approx(0.221, abs=0.001)

    def test_energy_per_sop_decreases_with_slices(self, model):
        values = [
            model.energy_per_sop_pj(PAPER_CONFIG.with_slices(n)) for n in FIG4_SLICES
        ]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert values[0] == pytest.approx(0.235, abs=0.001)

    def test_efficiency_table2(self, model):
        assert model.efficiency_tsops_w(PAPER_CONFIG) == pytest.approx(4.54, rel=0.01)

    def test_voltage_extrapolation_table2(self, model):
        """'At 0.9 V SNE would achieve 4.03 TOP/s/W and 0.248 pJ/SOP.'"""
        assert model.energy_per_sop_pj(PAPER_CONFIG, voltage=0.9) == pytest.approx(
            0.248, abs=0.002
        )
        assert model.efficiency_tsops_w(PAPER_CONFIG, voltage=0.9) == pytest.approx(
            4.03, rel=0.01
        )

    def test_gesture_inference_window(self, model):
        best, worst = model.dataset_range("ibm_dvs_gesture", PAPER_CONFIG)
        assert best.time_s == pytest.approx(7.1e-3, rel=0.01)
        assert worst.time_s == pytest.approx(23.12e-3, rel=0.01)
        assert best.energy_uj == pytest.approx(80, rel=0.01)
        assert worst.energy_uj == pytest.approx(261, rel=0.01)
        assert best.rate_inf_s == pytest.approx(141, rel=0.01)
        assert worst.rate_inf_s == pytest.approx(43, rel=0.01)

    def test_nmnist_inference_window(self, model):
        best, worst = model.dataset_range("nmnist", PAPER_CONFIG)
        assert best.energy_uj == pytest.approx(43, rel=0.01)
        assert worst.energy_uj == pytest.approx(142, rel=0.01)
        assert best.rate_inf_s == pytest.approx(261, rel=0.01)
        assert worst.rate_inf_s == pytest.approx(79.5, rel=0.01)

    def test_unknown_dataset_raises(self, model):
        with pytest.raises(KeyError, match="unknown dataset"):
            model.dataset_range("cifar", PAPER_CONFIG)

    def test_inference_is_linear_in_events(self, model):
        a = model.inference(1000, PAPER_CONFIG)
        b = model.inference(2000, PAPER_CONFIG)
        assert b.time_s == pytest.approx(2 * a.time_s)
        assert b.energy_uj == pytest.approx(2 * a.energy_uj)

    def test_zero_events(self, model):
        est = model.inference(0, PAPER_CONFIG)
        assert est.time_s == 0 and est.energy_uj == 0
        with pytest.raises(ValueError):
            model.inference(-1, PAPER_CONFIG)

    def test_events_from_activity_scaling(self, model):
        anchors = DATASET_EVENT_ANCHORS["ibm_dvs_gesture"]
        n = model.events_from_activity(0.024, 0.012, anchors[0])
        assert n == 2 * anchors[0]
