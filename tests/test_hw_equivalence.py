"""Hardware/functional equivalence: the central correctness argument.

The cycle-level event-driven simulator (scatter per event, per-event
saturation, TLU leak catch-up) and the dense golden model (vectorised
integer convolution + per-step LIF recurrence) are two independent
implementations of the same semantics.  These tests assert they agree
event-for-event across layer kinds, geometries, sparsity levels and
LIF parameters — including through whole compiled networks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventStream
from repro.hw import (
    SNE,
    LayerGeometry,
    LayerKind,
    LayerProgram,
    SNEConfig,
    check_no_intra_step_saturation,
    compile_network,
    simulate_layer_dense,
)
from repro.snn import LIFParams, build_small_network


def random_stream(shape, density, seed):
    rng = np.random.default_rng(seed)
    return EventStream.from_dense((rng.random(shape) < density).astype(np.uint8))


def run_both(program, stream, n_slices=2):
    out_hw, stats = SNE(SNEConfig(n_slices=n_slices)).run_layer(program, stream)
    out_gold = simulate_layer_dense(program, stream)
    return out_hw, out_gold, stats


class TestConvEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_conv_3x3(self, seed):
        rng = np.random.default_rng(seed)
        g = LayerGeometry(LayerKind.CONV, 2, 8, 8, 4, 8, 8, kernel=3, padding=1)
        prog = LayerProgram(g, rng.integers(-3, 4, (4, 2, 3, 3)), threshold=4, leak=1)
        stream = random_stream((8, 2, 8, 8), 0.08, seed + 100)
        assert check_no_intra_step_saturation(prog, stream)
        out_hw, out_gold, _ = run_both(prog, stream)
        assert out_hw == out_gold

    def test_conv_stride_2_no_padding(self):
        rng = np.random.default_rng(7)
        g = LayerGeometry(LayerKind.CONV, 2, 9, 9, 3, 4, 4, kernel=3, stride=2, padding=0)
        prog = LayerProgram(g, rng.integers(-2, 3, (3, 2, 3, 3)), threshold=3, leak=0)
        stream = random_stream((6, 2, 9, 9), 0.1, 8)
        out_hw, out_gold, _ = run_both(prog, stream)
        assert out_hw == out_gold

    def test_conv_kernel_1x1(self):
        rng = np.random.default_rng(9)
        g = LayerGeometry(LayerKind.CONV, 3, 6, 6, 2, 6, 6, kernel=1)
        prog = LayerProgram(g, rng.integers(-3, 4, (2, 3, 1, 1)), threshold=2, leak=1)
        stream = random_stream((5, 3, 6, 6), 0.15, 10)
        out_hw, out_gold, _ = run_both(prog, stream)
        assert out_hw == out_gold


class TestPoolAndDenseEquivalence:
    def test_depthwise_pool_2x2(self):
        g = LayerGeometry(LayerKind.DEPTHWISE, 3, 8, 8, 3, 4, 4, kernel=2, stride=2)
        prog = LayerProgram(g, np.ones((3, 2, 2), dtype=np.int64), threshold=2, leak=0)
        stream = random_stream((6, 3, 8, 8), 0.2, 11)
        out_hw, out_gold, _ = run_both(prog, stream)
        assert out_hw == out_gold

    def test_dense_layer(self):
        rng = np.random.default_rng(12)
        g = LayerGeometry(LayerKind.DENSE, 2, 4, 4, 10, 1, 1)
        prog = LayerProgram(g, rng.integers(-2, 3, (10, 32)), threshold=5, leak=1)
        stream = random_stream((8, 2, 4, 4), 0.15, 13)
        out_hw, out_gold, _ = run_both(prog, stream)
        assert out_hw == out_gold

    def test_dense_with_strong_leak(self):
        rng = np.random.default_rng(14)
        g = LayerGeometry(LayerKind.DENSE, 1, 4, 4, 6, 1, 1)
        prog = LayerProgram(g, rng.integers(-2, 3, (6, 16)), threshold=3, leak=2)
        stream = random_stream((10, 1, 4, 4), 0.1, 15)
        out_hw, out_gold, _ = run_both(prog, stream)
        assert out_hw == out_gold


class TestPropertyEquivalence:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_conv_layers(self, data):
        seed = data.draw(st.integers(0, 2**16))
        c_in = data.draw(st.integers(1, 3))
        c_out = data.draw(st.integers(1, 4))
        plane = data.draw(st.integers(4, 8))
        threshold = data.draw(st.integers(1, 8))
        leak = data.draw(st.integers(0, 2))
        density = data.draw(st.floats(0.0, 0.2))
        n_steps = data.draw(st.integers(1, 8))
        n_slices = data.draw(st.sampled_from([1, 2, 4]))
        rng = np.random.default_rng(seed)
        g = LayerGeometry(
            LayerKind.CONV, c_in, plane, plane, c_out, plane, plane,
            kernel=3, padding=1,
        )
        prog = LayerProgram(
            g, rng.integers(-2, 3, (c_out, c_in, 3, 3)), threshold=threshold, leak=leak
        )
        stream = random_stream((n_steps, c_in, plane, plane), density, seed + 1)
        if not check_no_intra_step_saturation(prog, stream):
            return  # per-event vs per-step saturation may legitimately differ
        out_hw, out_gold, stats = run_both(prog, stream, n_slices=n_slices)
        assert out_hw == out_gold
        assert stats.output_events == len(out_hw)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_slice_partitioning_invariance(self, seed):
        """Output must not depend on how neurons spread over slices."""
        rng = np.random.default_rng(seed)
        g = LayerGeometry(LayerKind.CONV, 2, 8, 8, 16, 8, 8, kernel=3, padding=1)
        prog = LayerProgram(g, rng.integers(-2, 3, (16, 2, 3, 3)), threshold=4, leak=1)
        stream = random_stream((5, 2, 8, 8), 0.08, seed + 2)
        outputs = [
            SNE(SNEConfig(n_slices=n)).run_layer(prog, stream)[0] for n in (1, 2, 8)
        ]
        assert outputs[0] == outputs[1] == outputs[2]


class TestNetworkEquivalence:
    def test_compiled_network_matches_golden_chain(self):
        net = build_small_network(
            input_size=8, channels=4, hidden=16, n_classes=5,
            lif=LIFParams(threshold=1.0, leak=0.05),
        )
        programs = compile_network(net, (2, 8, 8))
        stream = random_stream((6, 2, 8, 8), 0.06, 21)
        out_hw, _ = SNE(SNEConfig(n_slices=2)).run_network(programs, stream)
        golden = stream
        for prog in programs:
            golden = simulate_layer_dense(prog, golden)
        assert out_hw == golden

    def test_saturation_semantics_documented_divergence(self):
        """When intra-step saturation happens, paths may differ — the
        checker must flag exactly that situation."""
        g = LayerGeometry(LayerKind.DENSE, 1, 1, 4, 2, 1, 1)
        w = np.full((2, 4), 7, dtype=np.int64)  # 4 events x 7 = 28 ... fine
        prog = LayerProgram(g, w, threshold=120, leak=0)
        # 20 steps of 4 events each accumulate to 560 >> 127: saturates.
        dense = np.ones((20, 1, 1, 4), dtype=np.uint8)
        stream = EventStream.from_dense(dense)
        assert not check_no_intra_step_saturation(prog, stream)
