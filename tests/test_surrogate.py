"""Tests for surrogate spike-derivative functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn import FastSigmoid, SlayerPdf, Triangle

ALL_SURROGATES = [FastSigmoid(), Triangle(), SlayerPdf()]


class TestCommonProperties:
    @pytest.mark.parametrize("surr", ALL_SURROGATES, ids=lambda s: type(s).__name__)
    def test_peak_at_threshold(self, surr):
        v = np.linspace(-3, 3, 601)
        d = surr.derivative(v)
        assert d.argmax() == 300  # v = 0, i.e. membrane exactly at threshold

    @pytest.mark.parametrize("surr", ALL_SURROGATES, ids=lambda s: type(s).__name__)
    def test_non_negative(self, surr):
        v = np.linspace(-10, 10, 101)
        assert (surr.derivative(v) >= 0).all()

    @pytest.mark.parametrize("surr", ALL_SURROGATES, ids=lambda s: type(s).__name__)
    def test_symmetric(self, surr):
        v = np.linspace(0.1, 5, 50)
        assert np.allclose(surr.derivative(v), surr.derivative(-v))

    @pytest.mark.parametrize("surr", ALL_SURROGATES, ids=lambda s: type(s).__name__)
    @given(v=st.floats(-100, 100))
    @settings(max_examples=30)
    def test_bounded_by_peak(self, surr, v):
        peak = float(surr.derivative(np.array(0.0)))
        assert float(surr.derivative(np.array(v))) <= peak + 1e-12

    def test_shapes_preserved(self):
        v = np.zeros((3, 4, 5))
        for surr in ALL_SURROGATES:
            assert surr.derivative(v).shape == v.shape


class TestParameterValidation:
    def test_fast_sigmoid_alpha(self):
        with pytest.raises(ValueError):
            FastSigmoid(alpha=0)

    def test_triangle_width(self):
        with pytest.raises(ValueError):
            Triangle(width=-1)

    def test_slayer_params(self):
        with pytest.raises(ValueError):
            SlayerPdf(alpha=0)
        with pytest.raises(ValueError):
            SlayerPdf(beta=-1)


class TestSpecificShapes:
    def test_triangle_has_compact_support(self):
        surr = Triangle(width=1.0)
        assert surr.derivative(np.array(1.5)) == 0.0
        assert surr.derivative(np.array(0.5)) == pytest.approx(0.5)

    def test_fast_sigmoid_tail(self):
        surr = FastSigmoid(alpha=10.0)
        assert surr.derivative(np.array(0.0)) == pytest.approx(1.0)
        assert surr.derivative(np.array(1.0)) == pytest.approx(1 / 121)

    def test_slayer_exponential_decay(self):
        surr = SlayerPdf(alpha=2.0, beta=1.0)
        assert surr.derivative(np.array(0.0)) == pytest.approx(2.0)
        assert surr.derivative(np.array(1.0)) == pytest.approx(2.0 * np.exp(-1))
