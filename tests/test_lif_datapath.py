"""Tests for the bit-accurate cluster LIF datapath helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import check_weight_range, fire_mask, leak_catchup, sat_add, state_bounds


class TestStateBounds:
    def test_8bit(self):
        assert state_bounds(8) == (-128, 127)

    def test_4bit(self):
        assert state_bounds(4) == (-8, 7)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            state_bounds(1)


class TestSatAdd:
    def test_plain_addition(self):
        assert sat_add(np.array([10]), np.array([5]), 8)[0] == 15

    def test_saturates_high(self):
        assert sat_add(np.array([125]), np.array([7]), 8)[0] == 127

    def test_saturates_low(self):
        assert sat_add(np.array([-126]), np.array([-8]), 8)[0] == -128

    @given(
        v=st.integers(-128, 127),
        w=st.integers(-8, 7),
    )
    @settings(max_examples=100)
    def test_property_result_in_bounds(self, v, w):
        out = int(sat_add(np.array([v]), np.array([w]), 8)[0])
        assert -128 <= out <= 127
        # Saturating add equals true add when in range.
        if -128 <= v + w <= 127:
            assert out == v + w


class TestLeakCatchup:
    def test_single_step(self):
        assert leak_catchup(np.array([10]), leak=3, dt=1)[0] == 7

    def test_multi_step_telescopes(self):
        v = np.array([10])
        stepwise = v
        for _ in range(4):
            stepwise = leak_catchup(stepwise, leak=3, dt=1)
        assert leak_catchup(v, leak=3, dt=4)[0] == stepwise[0]

    def test_saturates_at_zero_positive_and_negative(self):
        assert leak_catchup(np.array([5]), leak=3, dt=4)[0] == 0
        assert leak_catchup(np.array([-5]), leak=3, dt=4)[0] == 0

    def test_zero_dt_is_identity(self):
        v = np.array([42, -17])
        assert np.array_equal(leak_catchup(v, leak=3, dt=0), v)

    def test_zero_leak_is_identity(self):
        v = np.array([42, -17])
        assert np.array_equal(leak_catchup(v, leak=0, dt=100), v)

    def test_rejects_negative_dt_or_leak(self):
        with pytest.raises(ValueError):
            leak_catchup(np.array([1]), leak=1, dt=-1)
        with pytest.raises(ValueError):
            leak_catchup(np.array([1]), leak=-1, dt=1)

    @given(v=st.integers(-128, 127), leak=st.integers(0, 10), dt=st.integers(0, 50))
    @settings(max_examples=100)
    def test_property_telescoping(self, v, leak, dt):
        """dt one-step decays == one dt-step decay (the TLU identity)."""
        single = np.array([v])
        for _ in range(dt):
            single = leak_catchup(single, leak, 1)
        assert leak_catchup(np.array([v]), leak, dt)[0] == single[0]


class TestFireMask:
    def test_at_threshold_fires(self):
        assert fire_mask(np.array([5]), threshold=5)[0]

    def test_below_threshold_silent(self):
        assert not fire_mask(np.array([4]), threshold=5)[0]

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            fire_mask(np.array([1]), threshold=0)


class TestWeightRange:
    def test_accepts_4bit(self):
        check_weight_range(np.array([-8, 7]), 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="4-bit"):
            check_weight_range(np.array([8]), 4)

    def test_empty_ok(self):
        check_weight_range(np.zeros(0), 4)
