"""The Dispatcher seam: local and broker execution planes behind one API.

:mod:`repro.runtime.dispatch` is the contract the serving front end
codes against, so these tests pin what clients of the seam depend on:

* ``LocalDispatcher`` is bit-identical to the pre-seam ``arun`` path
  and reports the wrapped backend's identity;
* ``BrokerDispatcher`` round-trips serve batches through a real spool
  with a real ``worker_loop`` agent — including payload-carrying
  ``sample_eval`` jobs over the ``events`` codec — and repeated
  identical batches through one dispatcher never collide (the fresh
  broker-per-submission rule);
* a fleet that never answers resolves as structured ``ok=False``
  failures at the per-submission timeout, never as a hang;
* ``aclose()`` fails pending submissions instead of stranding them,
  and a closed dispatcher rejects new work;
* the deprecated ``AsyncServer(backend=...)`` shim warns once and
  wraps the backend in a ``LocalDispatcher``.
"""

import asyncio
import threading

import pytest

from repro.runtime import (
    AsyncServer,
    BrokerDispatcher,
    Dispatcher,
    JobSpec,
    LocalDispatcher,
    canonical_json,
    dse_point_job,
    execute_job,
    register_runner,
)
from repro.runtime.backends import arun
from repro.runtime.dist import worker_loop
from tests.test_wire_codec import make_sample_spec


@register_runner("t_disp")
def _run_disp(params, payload):
    return {"i": params["i"]}


def disp_spec(i: int) -> JobSpec:
    return JobSpec(kind="t_disp", key=canonical_json({"i": i}))


def run_async(coro, timeout=30.0):
    """Drive one test coroutine with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture
def fleet(tmp_path):
    """One spool directory with one live worker-thread agent on it."""
    spool = tmp_path / "spool"
    stop = threading.Event()
    thread = threading.Thread(
        target=worker_loop,
        kwargs=dict(spool_dir=spool, worker_id="w-test", poll_s=0.01,
                    lease_ttl_s=10.0, stop=stop),
        daemon=True,
    )
    thread.start()
    try:
        yield spool
    finally:
        stop.set()
        thread.join(timeout=10)


class TestLocalDispatcher:
    def test_satisfies_the_protocol(self):
        assert isinstance(LocalDispatcher("serial"), Dispatcher)
        assert isinstance(BrokerDispatcher("unused-spool"), Dispatcher)

    def test_matches_arun_bit_identically(self):
        async def body():
            specs = [disp_spec(i) for i in range(5)]
            via_seam = [r async for r in LocalDispatcher("serial").submit(specs)]
            direct = [r async for r in arun("serial", specs)]
            return via_seam, direct

        via_seam, direct = run_async(body())

        def identity(r):
            return (r.job_hash, r.kind, r.ok, r.value, r.error, r.cached)

        assert [identity(r) for r in via_seam] == [identity(r) for r in direct]
        assert [r.value["i"] for r in via_seam] == list(range(5))

    def test_empty_batch_yields_nothing(self):
        async def body():
            return [r async for r in LocalDispatcher("serial").submit([])]

        assert run_async(body()) == []

    def test_describe_reports_wrapped_backend(self):
        desc = LocalDispatcher("serial").describe()
        assert desc["dispatcher"] == "local"
        assert desc["backend"] == "serial"


class TestBackendShim:
    def test_backend_kwarg_warns_once_and_wraps(self, monkeypatch):
        from repro.runtime import serve as serve_mod

        monkeypatch.setattr(serve_mod, "_BACKEND_SHIM_WARNED", False)

        async def body():
            with pytest.warns(DeprecationWarning, match="dispatcher="):
                srv = AsyncServer(backend="serial")
            assert isinstance(srv.dispatcher, LocalDispatcher)
            assert srv.stats()["backend"] == "serial"
            # The latch holds: a second deprecated construction is silent.
            import warnings as _w
            with _w.catch_warnings():
                _w.simplefilter("error", DeprecationWarning)
                AsyncServer(backend="serial")

        run_async(body())

    def test_backend_and_dispatcher_are_exclusive(self):
        async def body():
            with pytest.raises(ValueError, match="not both"):
                AsyncServer(backend="serial",
                            dispatcher=LocalDispatcher("serial"))

        run_async(body())

    def test_default_construction_is_local_thread_plane(self):
        async def body():
            srv = AsyncServer()
            assert isinstance(srv.dispatcher, LocalDispatcher)
            assert srv.stats()["backend"] == "thread"

        run_async(body())


class TestBrokerDispatcher:
    def test_round_trips_a_batch_through_the_fleet(self, fleet):
        async def body():
            bd = BrokerDispatcher(fleet, poll_s=0.01)
            try:
                specs = [dse_point_job(n) for n in (1, 2, 4)]
                got = [r async for r in bd.submit(specs)]
            finally:
                await bd.aclose()
            return specs, got

        specs, got = run_async(body())
        assert [r.job_hash for r in got] == [s.job_hash for s in specs]
        assert all(r.ok for r in got)
        assert [r.value for r in got] == [execute_job(s) for s in specs]

    def test_repeated_identical_batches_never_collide(self, fleet):
        # One long-lived dispatcher, the same batch twice: each
        # submission gets a fresh private broker (fresh run nonce), so
        # the second batch's chunks cannot shadow the first's.
        async def body():
            bd = BrokerDispatcher(fleet, poll_s=0.01)
            try:
                specs = [disp_spec(0), disp_spec(1)]
                first = [r async for r in bd.submit(specs)]
                second = [r async for r in bd.submit(specs)]
            finally:
                await bd.aclose()
            return first, second

        first, second = run_async(body())
        assert all(r.ok for r in first + second)
        assert [r.job_hash for r in first] == [r.job_hash for r in second]

    def test_sample_eval_payload_crosses_the_spool(self, fleet):
        spec = make_sample_spec()
        reference = execute_job(spec)

        async def body():
            bd = BrokerDispatcher(fleet, poll_s=0.01)
            try:
                return [r async for r in bd.submit([spec])]
            finally:
                await bd.aclose()

        (got,) = run_async(body())
        assert got.ok, got.error
        assert got.job_hash == spec.job_hash
        assert got.value == reference

    def test_concurrent_submissions_share_one_watcher(self, fleet):
        async def body():
            bd = BrokerDispatcher(fleet, poll_s=0.01)
            try:
                async def one(i):
                    return [r async for r in bd.submit([disp_spec(i)])]

                batches = await asyncio.gather(*(one(i) for i in range(4)))
            finally:
                await bd.aclose()
            return batches

        batches = run_async(body())
        for i, (result,) in enumerate(batches):
            assert result.ok
            assert result.value == {"i": i}

    def test_timeout_resolves_as_structured_failures(self, tmp_path):
        # No worker on this spool: the per-submission deadline converts
        # the outstanding chunk into ok=False results, never a hang.
        async def body():
            bd = BrokerDispatcher(tmp_path / "dead", poll_s=0.01, timeout=0.3)
            try:
                return [r async for r in bd.submit([disp_spec(0), disp_spec(1)])]
            finally:
                await bd.aclose()

        got = run_async(body())
        assert len(got) == 2
        assert all(not r.ok for r in got)
        assert all("no fleet answer" in r.error for r in got)

    def test_aclose_fails_pending_submissions(self, tmp_path):
        async def body():
            bd = BrokerDispatcher(tmp_path / "dead", poll_s=0.01)

            async def consume():
                return [r async for r in bd.submit([disp_spec(0)])]

            task = asyncio.ensure_future(consume())
            await asyncio.sleep(0.05)  # spooled, watcher polling
            await bd.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await task
            with pytest.raises(RuntimeError, match="closed"):
                async for _ in bd.submit([disp_spec(1)]):
                    pass

        run_async(body())

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="poll_s"):
            BrokerDispatcher("s", poll_s=0)
        with pytest.raises(ValueError, match="chunk_size"):
            BrokerDispatcher("s", chunk_size=0)
        with pytest.raises(ValueError, match="timeout"):
            BrokerDispatcher("s", timeout=0)

    def test_describe_names_the_spool(self, tmp_path):
        desc = BrokerDispatcher(tmp_path / "sp", lease_ttl_s=7.0).describe()
        assert desc["dispatcher"] == "broker"
        assert desc["spool"].endswith("sp")
        assert desc["lease_ttl_s"] == 7.0


class TestServerOnBrokerPlane:
    def test_serve_batches_run_on_the_fleet(self, fleet):
        async def body():
            bd = BrokerDispatcher(fleet, poll_s=0.01)
            try:
                async with AsyncServer(dispatcher=bd,
                                       batch_window_s=0.01) as srv:
                    specs = [dse_point_job(n) for n in (1, 2, 4, 8)]
                    got = [r async for _, r in srv.stream(specs)]
                    stats = srv.stats()
            finally:
                await bd.aclose()
            return specs, got, stats

        specs, got, stats = run_async(body())
        assert all(r.ok for r in got)
        assert [r.value for r in got] == [execute_job(s) for s in specs]
        assert stats["backend"] == "broker"
        assert stats["dispatcher"]["dispatcher"] == "broker"
