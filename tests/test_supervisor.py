"""Fleet supervisor: scaling decisions, crash respawn, spool GC.

These tests drive :meth:`Supervisor.tick` directly with a fake clock
and inert worker handles, so every scaling/respawn/GC decision is
deterministic and sleep-free; one marked-slow integration test proves
the default factory really drains a spool with forked workers.  The
chaos-soak suite (``test_chaos_soak.py``) covers the same machinery
under fault injection.
"""

import json
import os
import threading

import pytest

from repro.runtime import (
    Broker,
    MetricsRegistry,
    Supervisor,
    SupervisorTelemetry,
    obs,
    run_jobs,
)
from repro.runtime.chaos import chaos_job


@pytest.fixture(autouse=True)
def _isolated_registry():
    # Supervisor metrics land in the process-wide registry; keep each
    # test's counters exact.
    old = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(old)


class FakeClock:
    """Advanceable wall clock (see ``test_dist.FakeClock``)."""

    def __init__(self, now: float = 1_000_000.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class FakeHandle:
    """Inert process stand-in: killable, terminable, joinable."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.alive = True
        self.terminated = False

    def is_alive(self):
        return self.alive

    def terminate(self):
        self.terminated = True
        self.alive = False

    def kill(self):
        self.alive = False

    def join(self, timeout=None):
        pass

    def crash(self):
        """Simulate a SIGKILL: the process is just gone."""
        self.alive = False


def fake_factory():
    """A worker factory recording every handle it hands out."""
    spawned = []

    def factory(seq):
        wid = f"fake-{seq}"
        handle = FakeHandle(pid=10_000 + seq)
        spawned.append((wid, handle))
        return wid, handle

    factory.spawned = spawned
    return factory


def make_supervisor(tmp_path, clock, factory, **kw):
    kw.setdefault("min_workers", 1)
    kw.setdefault("max_workers", 4)
    kw.setdefault("backlog_per_worker", 2.0)
    kw.setdefault("scale_up_ticks", 2)
    kw.setdefault("idle_ticks", 3)
    return Supervisor(tmp_path / "spool", worker_factory=factory,
                      clock=clock, **kw)


def add_pending_chunks(spool, n, prefix="c"):
    for i in range(n):
        (spool / "chunks" / f"{prefix}{i}.chunk").write_text("{}")


def clear_chunks(spool):
    for path in (spool / "chunks").glob("*.chunk"):
        path.unlink()


class TestValidation:
    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Supervisor(tmp_path, min_workers=-1)
        with pytest.raises(ValueError):
            Supervisor(tmp_path, min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            Supervisor(tmp_path, max_workers=0)
        with pytest.raises(ValueError):
            Supervisor(tmp_path, tick_s=0)
        with pytest.raises(ValueError):
            Supervisor(tmp_path, backlog_per_worker=0)
        with pytest.raises(ValueError):
            Supervisor(tmp_path, gc_ttl_s=0)
        with pytest.raises(ValueError):
            Supervisor(tmp_path, scale_up_ticks=0)
        with pytest.raises(ValueError):
            Supervisor(tmp_path, idle_ticks=0)


class TestScaling:
    def test_first_tick_boots_the_fleet_floor(self, tmp_path):
        sup = make_supervisor(tmp_path, FakeClock(), fake_factory(),
                              min_workers=2)
        sup.tick()
        assert sup.fleet_size() == 2
        assert sup.stats.spawned == 2
        assert sup.stats.respawned == 0  # boot is planned, not recovery

    def test_sustained_backlog_scales_up_to_demand(self, tmp_path):
        clock = FakeClock()
        sup = make_supervisor(tmp_path, clock, fake_factory(),
                              min_workers=1, max_workers=4,
                              backlog_per_worker=2.0, scale_up_ticks=2)
        add_pending_chunks(sup.spool, 6)  # demand = ceil(6/2) = 3
        snap = sup.tick()
        assert snap.pending == 6 and snap.unclaimed == 6
        assert sup.fleet_size() == 1  # one busy tick: debounced
        sup.tick()
        assert sup.fleet_size() == 3  # sustained: scaled to demand
        assert sup.stats.scale_ups == 1
        assert sup.worker_pids() == [10_000, 10_001, 10_002]

    def test_scale_up_is_capped_at_max_workers(self, tmp_path):
        sup = make_supervisor(tmp_path, FakeClock(), fake_factory(),
                              max_workers=3, scale_up_ticks=1)
        add_pending_chunks(sup.spool, 100)
        sup.tick()
        assert sup.fleet_size() == 3
        assert sup.desired == 3

    def test_one_tick_burst_does_not_scale(self, tmp_path):
        sup = make_supervisor(tmp_path, FakeClock(), fake_factory(),
                              scale_up_ticks=2)
        add_pending_chunks(sup.spool, 8)
        sup.tick()
        clear_chunks(sup.spool)  # burst absorbed before the second tick
        sup.tick()
        assert sup.fleet_size() == 1
        assert sup.stats.scale_ups == 0

    def test_idle_spool_scales_down_to_floor_lifo(self, tmp_path):
        factory = fake_factory()
        sup = make_supervisor(tmp_path, FakeClock(), factory,
                              min_workers=1, scale_up_ticks=1, idle_ticks=2)
        add_pending_chunks(sup.spool, 8)
        sup.tick()
        assert sup.fleet_size() == 4
        clear_chunks(sup.spool)
        sup.tick()  # idle x1: hold
        assert sup.fleet_size() == 4
        sup.tick()  # idle x2: scale down
        assert sup.stats.scale_downs == 1
        assert sup.stats.retired == 3
        # LIFO: the newest workers were retired, the veteran survives.
        retired = [h.terminated for _, h in factory.spawned]
        assert retired == [False, True, True, True]
        # Retirement exits are reaped as planned, never as crashes.
        sup.tick()
        assert sup.fleet_size() == 1
        assert sup.stats.crashes == 0

    def test_telemetry_sees_scale_events(self, tmp_path):
        events = []

        class Recording(SupervisorTelemetry):
            """Collects scale decisions for the assertion below."""

            def on_scale(self, direction, target, why):
                events.append((direction, target))

        sup = make_supervisor(tmp_path, FakeClock(), fake_factory(),
                              scale_up_ticks=1, idle_ticks=1,
                              telemetry=Recording())
        add_pending_chunks(sup.spool, 8)
        sup.tick()
        clear_chunks(sup.spool)
        sup.tick()
        assert events == [("up", 4), ("down", 1)]


class TestCrashRecovery:
    def test_crash_is_respawned_and_latency_recorded(self, tmp_path):
        clock = FakeClock()
        factory = fake_factory()
        sup = make_supervisor(tmp_path, clock, factory, min_workers=2)
        sup.tick()
        factory.spawned[0][1].crash()
        clock.advance(0.25)
        sup.tick()
        assert sup.fleet_size() == 2
        assert sup.stats.crashes == 1
        assert sup.stats.respawned == 1
        assert len(sup.stats.recoveries) == 1
        # The stopwatch starts at crash *detection* (the reap), so the
        # instant respawn recovers within the same tick.
        assert sup.stats.recoveries[0] < 0.25

    def test_respawn_budget_brakes_a_crash_loop(self, tmp_path):
        factory = fake_factory()
        sup = make_supervisor(tmp_path, FakeClock(), factory,
                              min_workers=1, respawn_budget=2)
        sup.tick()
        for _ in range(4):  # keeps crashing every tick
            factory.spawned[-1][1].crash()
            sup.tick()
        assert sup.stats.respawned == 2  # budget spent...
        assert sup.fleet_size() == 0  # ...then the fleet shrinks
        assert sup.stats.crashes == 3  # boot + 2 respawns, all dead
        sup.tick()
        sup.tick()
        # The braked slot stays down — no quiet planned refill.
        assert sup.fleet_size() == 0
        assert sup.stats.spawned == 3

    def test_planned_scaling_never_consumes_the_budget(self, tmp_path):
        factory = fake_factory()
        sup = make_supervisor(tmp_path, FakeClock(), factory,
                              min_workers=2, respawn_budget=0)
        sup.tick()
        assert sup.fleet_size() == 2  # boot spawns despite zero budget
        assert sup.stats.respawned == 0

    def test_metrics_exported(self, tmp_path):
        sup = make_supervisor(tmp_path, FakeClock(), fake_factory(),
                              min_workers=1)
        add_pending_chunks(sup.spool, 3)
        sup.tick()
        snap = obs.get_registry().snapshot()["metrics"]
        workers = snap["repro_supervisor_workers"]["series"]
        backlog = snap["repro_supervisor_backlog_chunks"]["series"]
        events = snap["repro_supervisor_events_total"]["series"]
        assert workers[0]["value"] == 1
        assert backlog[0]["value"] == 3
        assert {"op": "spawn"} in [s["labels"] for s in events]

    def test_close_terminates_the_fleet(self, tmp_path):
        factory = fake_factory()
        sup = make_supervisor(tmp_path, FakeClock(), factory, min_workers=3)
        sup.tick()
        sup.close()
        assert all(not h.is_alive() for _, h in factory.spawned)
        assert sup.fleet_size() == 0
        sup.close()  # idempotent


class TestSpoolGC:
    TTL = 100.0

    def _sup(self, tmp_path, clock):
        return make_supervisor(tmp_path, clock, fake_factory(),
                               min_workers=0, gc_ttl_s=self.TTL)

    @staticmethod
    def _age(path, clock, seconds):
        ts = clock.now - seconds
        os.utime(path, (ts, ts))

    @staticmethod
    def _claim(spool, chunk_id, expires):
        doc = {"schema": 1, "worker": "w", "chunk": chunk_id,
               "expires": expires, "heartbeat": expires}
        (spool / "claims" / f"{chunk_id}.claim").write_text(json.dumps(doc))

    def test_gc_sweeps_abandoned_state_only(self, tmp_path):
        clock = FakeClock()
        sup = self._sup(tmp_path, clock)
        spool = sup.spool

        # Abandoned: chunk + expired-long-ago claim + orphan result,
        # all older than the TTL.
        (spool / "chunks" / "dead.chunk").write_text("{}")
        self._age(spool / "chunks" / "dead.chunk", clock, self.TTL + 60)
        self._claim(spool, "dead", expires=clock.now - self.TTL - 60)
        (spool / "results" / "orphan.json").write_text("{}")
        self._age(spool / "results" / "orphan.json", clock, self.TTL + 60)
        (spool / "chunks" / "debris.tmp").write_text("")
        self._age(spool / "chunks" / "debris.tmp", clock, self.TTL + 60)

        # Live: an old chunk whose lease is *current* — a long job mid
        # -heartbeat — plus fresh traffic below the TTL.
        (spool / "chunks" / "busy.chunk").write_text("{}")
        self._age(spool / "chunks" / "busy.chunk", clock, self.TTL + 60)
        self._claim(spool, "busy", expires=clock.now + 30)
        (spool / "chunks" / "fresh.chunk").write_text("{}")
        (spool / "results" / "fresh.json").write_text("{}")

        removed = sup.gc()
        assert (removed.claims, removed.chunks, removed.results) == (1, 1, 1)
        assert not (spool / "chunks" / "dead.chunk").exists()
        assert not (spool / "claims" / "dead.claim").exists()
        assert not (spool / "results" / "orphan.json").exists()
        assert not (spool / "chunks" / "debris.tmp").exists()
        assert (spool / "chunks" / "busy.chunk").exists()
        assert (spool / "claims" / "busy.claim").exists()
        assert (spool / "chunks" / "fresh.chunk").exists()
        assert (spool / "results" / "fresh.json").exists()
        assert sup.stats.gc.total() == 3

    def test_recently_expired_lease_is_left_for_the_broker(self, tmp_path):
        # An expired lease is the *broker's* requeue signal; GC only
        # claims it once it has been dead for a full TTL.
        clock = FakeClock()
        sup = self._sup(tmp_path, clock)
        (sup.spool / "chunks" / "c1.chunk").write_text("{}")
        self._claim(sup.spool, "c1", expires=clock.now - 5)
        assert sup.gc().total() == 0
        assert (sup.spool / "claims" / "c1.claim").exists()

    def test_stale_corrupt_claim_is_collected(self, tmp_path):
        clock = FakeClock()
        sup = self._sup(tmp_path, clock)
        path = sup.spool / "claims" / "torn.claim"
        path.write_bytes(b"\x00torn")
        assert sup.gc().total() == 0  # fresh: a broker may yet heal it
        self._age(path, clock, self.TTL + 60)
        removed = sup.gc()
        assert removed.claims == 1
        assert not path.exists()


@pytest.mark.slow
class TestRealFleet:
    def test_supervised_workers_drain_a_broker_run(self, tmp_path):
        """End to end with the default factory: the supervisor boots
        real worker processes that drain a real broker's spool."""
        spool = tmp_path / "spool"
        jobs = [chaos_job(seed=7, round_no=0, i=i) for i in range(6)]
        reference = run_jobs(jobs, executor="serial")
        broker = Broker(spool, poll_s=0.02)
        broker.submit(jobs, chunk_size=2)
        sup = Supervisor(spool, min_workers=1, max_workers=2, tick_s=0.05,
                         backlog_per_worker=1.0, scale_up_ticks=1,
                         idle_ticks=1000, worker_poll_s=0.01)
        stop = threading.Event()
        thread = threading.Thread(target=sup.run, kwargs=dict(stop=stop),
                                  daemon=True)
        thread.start()
        try:
            results = broker.collect(timeout=60)
        finally:
            stop.set()
            thread.join(timeout=30)
            broker.close()
        assert [r.ok for r in results] == [True] * 6
        assert ([r.value for r in results]
                == [r.value for r in reference.results])
        assert sup.stats.spawned >= 1
        assert sup.stats.crashes == 0
