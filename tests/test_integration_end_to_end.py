"""End-to-end integration: data -> training -> compilation -> hardware.

The deployment promise of the whole repository in one test module:
a network trained in the float framework, quantised and compiled onto
the cycle-level accelerator, must classify (nearly) as well as its
software evaluation, with energy that tracks the input activity.
"""

import numpy as np
import pytest

from repro.energy import PowerModel
from repro.events import SyntheticDVSGesture, polarity_flip, spatial_jitter
from repro.hw import HardwareEvaluator, SNEConfig, compile_network
from repro.snn import SNE_LIF_4B, TrainConfig, Trainer, evaluate


@pytest.fixture(scope="module")
def trained_setup():
    size, n_steps = 16, 12
    data = SyntheticDVSGesture(size=size, n_steps=n_steps).generate(n_per_class=5, seed=0)
    train, _, test = data.split((0.65, 0.10, 0.25), seed=0)
    net = SNE_LIF_4B.build(
        small=True, input_size=size, n_classes=11, channels=6, hidden=40, seed=0
    )
    trainer = Trainer(net, TrainConfig(epochs=10, batch_size=11, lr=3e-3, seed=0))
    trainer.fit(train)
    return net, train, test, size


class TestEndToEnd:
    def test_software_accuracy_above_chance(self, trained_setup):
        net, _, test, _ = trained_setup
        assert evaluate(net, test) > 0.3  # chance = 0.09

    def test_hardware_accuracy_tracks_software(self, trained_setup):
        net, _, test, size = trained_setup
        sw_acc = evaluate(net, test)
        programs = compile_network(net, (2, size, size))
        evaluator = HardwareEvaluator(programs, SNEConfig(n_slices=8))
        report = evaluator.evaluate(test)
        # Quantised threshold/leak rounding costs a little; the hardware
        # must stay within 25 points of the fake-quantised software run
        # and clearly above chance.
        assert report.accuracy > 0.25
        assert abs(report.accuracy - sw_acc) <= 0.25

    def test_hardware_energy_tracks_activity(self, trained_setup):
        net, _, test, size = trained_setup
        programs = compile_network(net, (2, size, size))
        evaluator = HardwareEvaluator(programs, SNEConfig(n_slices=8))
        report = evaluator.evaluate(test, max_samples=8)
        assert report.energy_follows_events() > 0.8

    def test_energy_interval_shape_like_table1(self, trained_setup):
        """Best/worst-case per-inference energy is a genuine interval,
        like Table I's 80-261 uJ, driven by per-sample activity."""
        net, _, test, size = trained_setup
        programs = compile_network(net, (2, size, size))
        evaluator = HardwareEvaluator(programs, SNEConfig(n_slices=8), PowerModel())
        report = evaluator.evaluate(test, max_samples=8)
        lo, hi = report.energy_range_uj
        assert hi > lo > 0

    def test_augmented_samples_still_classified(self, trained_setup):
        """Deployment robustness: mild augmentation at inference time
        should not collapse the hardware predictions to a single class."""
        net, _, test, size = trained_setup
        programs = compile_network(net, (2, size, size))
        evaluator = HardwareEvaluator(programs, SNEConfig(n_slices=8))
        predictions = []
        for i, sample in enumerate(test.samples[:6]):
            stream = spatial_jitter(sample.stream, 1, seed=i)
            stream = polarity_flip(stream, probability=0.1, seed=i)
            predictions.append(evaluator.run_sample(stream, sample.label).prediction)
        assert len(set(predictions)) > 1

    def test_more_slices_same_predictions_less_time(self, trained_setup):
        """Scaling the accelerator changes schedule, not function."""
        net, _, test, size = trained_setup
        programs = compile_network(net, (2, size, size))
        sample = test.samples[0]
        r1 = HardwareEvaluator(programs, SNEConfig(n_slices=1)).run_sample(
            sample.stream, sample.label
        )
        r8 = HardwareEvaluator(programs, SNEConfig(n_slices=8)).run_sample(
            sample.stream, sample.label
        )
        assert r1.prediction == r8.prediction
        assert r1.sops == r8.sops
        assert r8.cycles <= r1.cycles  # fewer passes with more slices
