"""Repo-level pytest configuration.

Makes the source tree importable without an installed package, so a
fresh checkout can run ``pytest tests/`` and
``pytest benchmarks/ --benchmark-only`` directly (useful in offline
environments where ``pip install -e .`` cannot build a wheel), and
registers the suite's tier markers:

- ``slow`` — multi-second integration tests (real worker processes,
  real lease TTLs).  Still part of tier-1; deselect with
  ``-m "not slow"`` for a quick loop.
- ``soak`` — minutes-scale chaos-soak scenarios.  Skipped unless
  ``--run-soak`` is passed (``make test-soak``).
"""

import pathlib
import sys

import pytest

_SRC = pathlib.Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--run-soak",
        action="store_true",
        default=False,
        help="run minutes-scale chaos-soak tests (marked @pytest.mark.soak)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: multi-second integration test (tier-1, deselectable)")
    config.addinivalue_line(
        "markers", "soak: minutes-scale chaos soak; needs --run-soak")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-soak"):
        return
    skip = pytest.mark.skip(reason="soak test: pass --run-soak to enable")
    for item in items:
        if "soak" in item.keywords:
            item.add_marker(skip)
