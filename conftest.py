"""Repo-level pytest configuration.

Makes the source tree importable without an installed package, so a
fresh checkout can run ``pytest tests/`` and
``pytest benchmarks/ --benchmark-only`` directly (useful in offline
environments where ``pip install -e .`` cannot build a wheel).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
