# Exercise the full stack in one command each.
#
#   make test        - tier-1 test suite (the roadmap's verify command)
#   make test-parity - cross-backend parity + store eviction suites only
#   make test-serve  - async serving front end suite only
#   make test-dist   - distributed queue suite only (broker, workers,
#                      fault injection, sharding)
#   make test-soak   - minutes-scale chaos-soak scenarios (supervised
#                      fleet under seeded kills/corruption/eviction)
#   make test-obs    - observability stack only: registry/journal core,
#                      trace analytics, SLO engine
#   make fleet-smoke - end-to-end fleet serving: a supervised worker
#                      fleet plus a broker-dispatch AsyncServer on one
#                      spool, answers checked against a serial run
#   make docs-check  - docs gate: docstring coverage floor on the
#                      runtime + docs/README link & anchor integrity
#   make lint        - ruff check + format check (CI installs ruff;
#                      locally it must be on PATH)
#   make bench-smoke - one fast benchmark: runtime scaling (parity + cache)
#   make bench-serve - serving latency benchmark (5x cache-hit bar)
#   make bench-gate  - run the JSON-emitting benchmarks, then fail on
#                      >20% regression vs benchmarks/baselines/
#   make bench-baseline - promote the current BENCH_*.json to baselines
#   make sweep-smoke - tiny 2-point design-space sweep through the CLI,
#                      run once per backend to demonstrate bit-identical
#                      tables and the shared-store hit path
#   make profile-smoke - hot-path profile of a small workload via the CLI
#   make fuzz-kernels - kernel parity fuzz matrix (reference vs numpy vs
#                      numba when importable) over adversarial draws
#   make bench       - the full benchmark suite (slow)
#   make clean-cache - drop the CLI's default on-disk result store

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

#: The benchmark modules that emit BENCH_*.json for the regression gate.
BENCH_JSON_SUITE = benchmarks/bench_fig5b_perf.py \
                   benchmarks/bench_runtime_scaling.py \
                   benchmarks/bench_serve_latency.py \
                   benchmarks/bench_cosim_fuzz.py \
                   benchmarks/bench_dist_throughput.py \
                   benchmarks/bench_obs_overhead.py \
                   benchmarks/bench_chaos_soak.py

.PHONY: test test-parity test-serve test-dist test-soak test-obs fleet-smoke docs-check \
        lint bench-smoke bench-serve bench-gate bench-baseline sweep-smoke \
        profile-smoke fuzz-kernels bench clean-cache

test:
	$(PYTHON) -m pytest -x -q

test-parity:
	$(PYTHON) -m pytest tests/test_backend_parity.py tests/test_store_eviction.py -q

test-serve:
	$(PYTHON) -m pytest tests/test_serve.py -q

test-dist:
	$(PYTHON) -m pytest tests/test_dist.py -q

test-soak:
	$(PYTHON) -m pytest tests/test_chaos_soak.py tests/test_supervisor.py -q --run-soak

test-obs:
	$(PYTHON) -m pytest tests/test_obs.py tests/test_tracequery.py tests/test_slo.py -q

fleet-smoke:
	$(PYTHON) tools/fleet_serve_smoke.py --workdir .ci_fleet

docs-check:
	$(PYTHON) tools/check_docs.py

lint:
	ruff check .
	ruff format --check .

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_runtime_scaling.py -q

bench-serve:
	$(PYTHON) -m pytest benchmarks/bench_serve_latency.py -q

bench-gate:
	$(PYTHON) -m pytest $(BENCH_JSON_SUITE) -q
	$(PYTHON) tools/bench_compare.py

bench-baseline:
	$(PYTHON) -m pytest $(BENCH_JSON_SUITE) -q
	$(PYTHON) tools/bench_compare.py --update

profile-smoke:
	$(PYTHON) -m repro profile --per-class 1 --max-samples 4 --quiet

fuzz-kernels:
	$(PYTHON) -m repro.hw.fuzz 200 --kernels

sweep-smoke:
	$(PYTHON) -m repro sweep --slices 4,8 --backend process --workers 2 --cache-dir .repro_cache_smoke
	$(PYTHON) -m repro sweep --slices 4,8 --backend thread --cache-dir .repro_cache_smoke
	$(PYTHON) -m repro sweep --slices 4,8 --backend serial --cache-dir .repro_cache_smoke
	$(PYTHON) -m repro sweep --slices 4,8 --backend cluster --workers 2 --shards 2 --cache-dir .repro_cache_smoke
	$(PYTHON) -m repro cache stats --detail --cache-dir .repro_cache_smoke

bench:
	$(PYTHON) -m pytest benchmarks/ -q

clean-cache:
	$(PYTHON) -m repro cache clear
	rm -rf .repro_cache_smoke
