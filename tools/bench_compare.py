#!/usr/bin/env python
"""Benchmark regression gate: diff ``BENCH_*.json`` against baselines.

Benchmarks emit machine-readable records through the ``bench_json``
fixture (``benchmarks/conftest.py``): one ``BENCH_<name>.json`` per
module at the repository root, each metric tagged with a comparison
direction — ``lower`` (timings), ``higher`` (throughputs, hit rates)
or ``info`` (never gated).

This tool compares the current records against the committed baselines
in ``benchmarks/baselines/`` and exits non-zero when any gated metric
regressed by more than the tolerance (default 20%, override with
``--tolerance`` or ``$REPRO_BENCH_TOLERANCE``):

* ``direction: lower``  — regression when current > baseline * (1 + tol)
* ``direction: higher`` — regression when current < baseline * (1 - tol)

A baseline file without a current record fails the gate (the benchmark
stopped reporting); new current files without a baseline are reported
as unbaselined but pass.  ``--update`` rewrites the baselines from the
current records (run it after an intentional perf change and commit
the result).  Wall-clock baselines are machine-dependent: refresh them
with ``--update`` when moving to different CI hardware rather than
loosening the tolerance.

Usage::

    python tools/bench_compare.py            # gate (make bench-gate / CI)
    python tools/bench_compare.py --update   # accept current as baseline
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = REPO / "benchmarks" / "baselines"
DEFAULT_TOLERANCE = 0.2


def load_records(directory: pathlib.Path) -> dict[str, dict]:
    """Read every ``BENCH_*.json`` in ``directory``, keyed by name."""
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"bench-compare: {path.name}: unreadable JSON: {exc}",
                  file=sys.stderr)
            continue
        records[path.stem.removeprefix("BENCH_")] = doc
    return records


def compare_metric(key: str, baseline: dict, current: dict, tolerance: float,
                   speed_ratio: float = 1.0):
    """Return ``(status, detail)`` for one metric.

    ``status`` is ``"ok"``, ``"regressed"`` or ``"info"``; ``detail``
    is the rendered comparison line.  ``speed_ratio`` is
    ``current_calibration / baseline_calibration`` — how much slower
    the current machine ran the fixed calibration kernel.  Gated
    second-valued metrics are divided by it before applying the
    tolerance, so a uniformly slow (or fast) machine does not read as
    a regression (or mask one); dimensionless metrics (ratios, counts,
    rates) are compared raw.
    """
    direction = baseline.get("direction", "info")
    base = float(baseline["value"])
    cur = float(current["value"])
    unit = baseline.get("unit", "")
    cur_adj = cur / speed_ratio if unit == "s" else cur
    ratio = cur_adj / base if base else float("inf")
    detail = f"{key}: {base:.6g} -> {cur:.6g} {unit} (x{ratio:.2f} normalised, {direction})"
    if direction == "lower" and cur_adj > base * (1.0 + tolerance):
        return "regressed", detail
    if direction == "higher" and cur_adj < base * (1.0 - tolerance):
        return "regressed", detail
    if direction == "info":
        return "info", detail
    return "ok", detail


def run_gate(baseline_dir: pathlib.Path, current_dir: pathlib.Path,
             tolerance: float) -> int:
    """Compare current records against baselines; return the exit status."""
    baselines = load_records(baseline_dir)
    currents = load_records(current_dir)
    if not baselines:
        print(f"bench-compare: no baselines in {baseline_dir}; "
              "run with --update to create them", file=sys.stderr)
        return 1
    failures: list[str] = []
    for name, base_doc in sorted(baselines.items()):
        cur_doc = currents.get(name)
        if cur_doc is None:
            failures.append(f"{name}: no current BENCH_{name}.json "
                            "(benchmark stopped emitting?)")
            continue
        base_cal = float(base_doc.get("calibration_s", 0.0))
        cur_cal = float(cur_doc.get("calibration_s", 0.0))
        speed_ratio = cur_cal / base_cal if base_cal > 0 and cur_cal > 0 else 1.0
        print(f"[{name}] machine speed ratio x{speed_ratio:.2f} "
              "(current/baseline calibration)")
        for key, base_metric in sorted(base_doc.get("metrics", {}).items()):
            cur_metric = cur_doc.get("metrics", {}).get(key)
            if cur_metric is None:
                failures.append(f"{name}.{key}: metric missing from current record")
                continue
            status, detail = compare_metric(key, base_metric, cur_metric,
                                            tolerance, speed_ratio)
            marker = {"ok": "  ok  ", "info": " info ", "regressed": "REGRESS"}[status]
            print(f"  {marker} {detail}")
            if status == "regressed":
                failures.append(f"{name}.{key}: {detail}")
    for name in sorted(set(currents) - set(baselines)):
        print(f"[{name}] unbaselined (commit with --update to start gating it)")
    if failures:
        print(f"\nbench-compare: {len(failures)} regression(s) beyond "
              f"{tolerance:.0%}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench-compare: {len(baselines)} record(s) within {tolerance:.0%} "
          "of baseline")
    return 0


def update_baselines(baseline_dir: pathlib.Path, current_dir: pathlib.Path) -> int:
    """Copy every current ``BENCH_*.json`` into the baseline directory."""
    paths = sorted(current_dir.glob("BENCH_*.json"))
    if not paths:
        print(f"bench-compare: no BENCH_*.json in {current_dir} to promote",
              file=sys.stderr)
        return 1
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for path in paths:
        shutil.copyfile(path, baseline_dir / path.name)
        print(f"bench-compare: baselined {path.name}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        description="Fail on >tolerance benchmark regressions vs committed baselines."
    )
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=DEFAULT_BASELINE_DIR)
    parser.add_argument("--current-dir", type=pathlib.Path, default=REPO,
                        help="where the fresh BENCH_*.json records live "
                             "(default: repo root)")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("REPRO_BENCH_TOLERANCE",
                                                     DEFAULT_TOLERANCE)),
                        help="allowed fractional regression (default 0.2)")
    parser.add_argument("--update", action="store_true",
                        help="promote current records to baselines instead of gating")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be non-negative")
    if args.update:
        return update_baselines(args.baseline_dir, args.current_dir)
    return run_gate(args.baseline_dir, args.current_dir, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
