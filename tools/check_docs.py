#!/usr/bin/env python
"""Documentation gate: docstring coverage + markdown link/anchor check.

Two checks, both dependency-free so they run in any environment the
test suite runs in (no pydocstyle/interrogate needed):

1. **Docstring coverage** over ``src/repro/runtime/`` (extend via
   ``--paths``): every module, public class and public
   function/method must carry a docstring.  The floor is 100% — a new
   public API lands with its documentation or the gate fails, listing
   each missing item as ``path:line: name``.

2. **Markdown integrity** over ``docs/*.md`` and ``README.md``:
   every relative link must point at an existing file, and every
   anchor link (``#section``, including the ToC) must match a real
   heading of its target, using GitHub's slug rules.  Absolute
   http(s) links are not fetched (the gate must pass offline).

Exit status 0 when clean; 1 with a per-problem report otherwise —
suitable for ``make docs-check`` and the CI docs gate.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Python trees held to the 100% public-docstring floor by default.
DEFAULT_PY_PATHS = ("src/repro/runtime",)

#: Markdown documents whose links/anchors/ToC are verified by default.
DEFAULT_MD_PATHS = ("docs", "README.md")

#: Matches ``[text](target)`` markdown links, ignoring images.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Matches ATX headings (``## Title``) for anchor slug extraction.
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: Fenced code block delimiter — headings/links inside fences don't count.
_FENCE = re.compile(r"^\s*(```|~~~)")


# -- docstring coverage -----------------------------------------------------

def _is_public(name: str) -> bool:
    return not name.startswith("_")


def iter_doc_targets(tree: ast.Module):
    """Yield ``(lineno, qualname, node)`` for everything that needs a
    docstring: the module, public classes, public functions and public
    methods (dunders and underscore-private names are exempt)."""
    yield 0, "<module>", tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(node.name):
            yield node.lineno, node.name, node
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield node.lineno, node.name, node
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(sub.name):
                    yield sub.lineno, f"{node.name}.{sub.name}", sub


def check_docstrings(py_paths: list[pathlib.Path]) -> tuple[list[str], int]:
    """Return (problems, number of documented targets) for the trees."""
    problems: list[str] = []
    documented = 0
    for root in py_paths:
        if not root.exists():
            problems.append(f"{root.relative_to(REPO)}: path does not exist")
            continue
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            rel = path.relative_to(REPO)
            try:
                tree = ast.parse(path.read_text())
            except SyntaxError as exc:
                problems.append(f"{rel}: unparsable: {exc}")
                continue
            for lineno, name, node in iter_doc_targets(tree):
                if ast.get_docstring(node):
                    documented += 1
                else:
                    problems.append(f"{rel}:{lineno}: missing docstring: {name}")
    return problems, documented


# -- markdown links + anchors -----------------------------------------------

def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: inline code markers dropped,
    lowercased, punctuation stripped, spaces to hyphens."""
    text = heading.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _scan_markdown(path: pathlib.Path) -> tuple[list[str], list[tuple[int, str]]]:
    """(heading slugs, [(lineno, link target), ...]) outside code fences."""
    slugs: list[str] = []
    links: list[tuple[int, str]] = []
    seen: dict[str, int] = {}
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING.match(line)
        if m:
            slug = github_slug(m.group(2))
            # GitHub de-duplicates repeated headings as slug, slug-1, ...
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.append(slug if n == 0 else f"{slug}-{n}")
        for link in _LINK.finditer(line):
            links.append((lineno, link.group(1)))
    return slugs, links


def check_markdown(md_paths: list[pathlib.Path]) -> tuple[list[str], int]:
    """Return (problems, number of links verified) for the documents."""
    files: list[pathlib.Path] = []
    problems: list[str] = []
    for root in md_paths:
        if not root.exists():
            problems.append(f"{root.relative_to(REPO)}: path does not exist")
            continue
        files.extend(sorted(root.rglob("*.md")) if root.is_dir() else [root])
    slug_cache = {path: _scan_markdown(path) for path in files}
    checked = 0
    for path, (_, links) in slug_cache.items():
        rel = path.relative_to(REPO)
        for lineno, target in links:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            raw_path, _, anchor = target.partition("#")
            dest = path if not raw_path else (path.parent / raw_path).resolve()
            if not dest.exists():
                problems.append(f"{rel}:{lineno}: broken link: {target}")
                continue
            if anchor:
                if dest.suffix != ".md":
                    continue  # source-line anchors etc. aren't headings
                if dest not in slug_cache:
                    slug_cache[dest] = _scan_markdown(dest)
                if anchor not in slug_cache[dest][0]:
                    problems.append(
                        f"{rel}:{lineno}: dangling anchor: {target} "
                        f"(no heading slug {anchor!r})"
                    )
    return problems, checked


def main(argv=None) -> int:
    """Run both checks; print a report and return the exit status."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paths", nargs="*", default=list(DEFAULT_PY_PATHS),
                        help="python files/trees held to the docstring floor")
    parser.add_argument("--docs", nargs="*", default=list(DEFAULT_MD_PATHS),
                        help="markdown files/trees to link-check")
    args = parser.parse_args(argv)

    doc_problems, documented = check_docstrings([REPO / p for p in args.paths])
    md_problems, links = check_markdown([REPO / p for p in args.docs])

    for problem in doc_problems + md_problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if doc_problems or md_problems:
        print(
            f"docs-check: FAILED — {len(doc_problems)} docstring / "
            f"{len(md_problems)} markdown problem(s)",
            file=sys.stderr,
        )
        return 1
    print(f"docs-check: OK ({documented} public defs documented, "
          f"{links} markdown links verified)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
