"""Fleet-serve smoke: broker-dispatch server + supervised fleet, one spool.

The CI end-to-end for the fleet-scale serving path: start a real
``repro supervise`` process managing worker agents on a spool, point an
:class:`~repro.runtime.serve.AsyncServer` at the same spool through a
:class:`~repro.runtime.dispatch.BrokerDispatcher`, drive mixed traffic
— cached and uncached ``dse_point`` / ``baseline_compare`` requests
plus a payload-carrying ``sample_eval`` job crossing the spool via the
``events`` codec — and assert every per-job answer is **bit-identical**
to a serial in-process run of the same specs.

Exit status 0 on success, 1 on any divergence (CI uploads the journal,
spool and log artifacts on failure).  Usage::

    python tools/fleet_serve_smoke.py --workdir .ci_fleet
"""

import argparse
import asyncio
import os
import pathlib
import signal
import subprocess
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.energy.power import PowerModel  # noqa: E402
from repro.events import EventStream  # noqa: E402
from repro.hw import LayerGeometry, LayerKind, LayerProgram, SNEConfig  # noqa: E402
from repro.runtime import (  # noqa: E402
    AsyncServer,
    BrokerDispatcher,
    ResultStore,
    baseline_compare_job,
    dse_point_job,
    execute_job,
)
from repro.runtime.jobs import sample_eval_job  # noqa: E402


def build_traffic():
    """The mixed request set: payload-free sweep/table specs plus one
    payload-carrying ``sample_eval`` (events codec over the spool)."""
    specs = [dse_point_job(n) for n in (1, 2, 4, 8)]
    specs += [dse_point_job(2, voltage=0.7), dse_point_job(4, voltage=0.9)]
    specs += [baseline_compare_job("TrueNorth"), baseline_compare_job("Tianjic")]
    g = LayerGeometry(LayerKind.DENSE, 1, 2, 2, 4, 1, 1)
    w = np.random.default_rng(7).integers(-3, 4, (4, 4))
    stream = EventStream.from_dense(np.ones((3, 1, 2, 2), dtype=np.uint8))
    specs.append(sample_eval_job(
        [LayerProgram(g, w, threshold=2, leak=0)], SNEConfig(n_slices=1),
        stream, 1, power=PowerModel(),
    ))
    return specs


async def drive(specs, spool, store):
    """Serve every spec through the broker plane; return the results."""
    dispatcher = BrokerDispatcher(spool, poll_s=0.02, timeout=120.0)
    try:
        async with AsyncServer(dispatcher=dispatcher, cache=store,
                               batch_window_s=0.02, max_batch=4) as srv:
            out = [None] * len(specs)
            async for i, result in srv.stream(specs):
                out[i] = result
            stats = srv.stats()
    finally:
        await dispatcher.aclose()
    return out, stats


def main() -> int:
    """Run the smoke; 0 = every answer matched the serial reference."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default=".ci_fleet",
                        help="scratch directory (spool/cache/log artifacts)")
    parser.add_argument("--workers", type=int, default=2,
                        help="supervised fleet ceiling (default 2)")
    args = parser.parse_args()

    workdir = pathlib.Path(args.workdir)
    spool = workdir / "spool"
    cache_dir = workdir / "cache"
    workdir.mkdir(parents=True, exist_ok=True)

    specs = build_traffic()
    reference = [execute_job(s) for s in specs]

    # Pre-warm a slice of the traffic into the shared store so the run
    # exercises the cached path next to genuinely fleet-computed jobs.
    store = ResultStore(cache_dir)
    for spec, value in list(zip(specs, reference))[:3]:
        store.put(spec, value, 0.0)

    log = (workdir / "supervise.log").open("w")
    supervisor = subprocess.Popen(
        [sys.executable, "-m", "repro", "supervise", "--spool", str(spool),
         "--cache-dir", str(cache_dir), "--min-workers", "1",
         "--max-workers", str(args.workers), "--tick", "0.2"],
        stdout=log, stderr=subprocess.STDOUT,
        env={**os.environ,
             "PYTHONPATH": str(pathlib.Path(__file__).resolve().parent.parent
                               / "src"),
             "REPRO_OBS_DIR": str(workdir / "obs")},
    )
    try:
        time.sleep(1.0)  # let the fleet come up
        if supervisor.poll() is not None:
            print("fleet-serve smoke: supervisor died on startup "
                  f"(rc {supervisor.returncode})", file=sys.stderr)
            return 1
        start = time.monotonic()
        results, stats = asyncio.run(drive(specs, spool, store))
        elapsed = time.monotonic() - start
    finally:
        supervisor.send_signal(signal.SIGTERM)
        try:
            supervisor.wait(timeout=30)
        except subprocess.TimeoutExpired:
            supervisor.kill()
            supervisor.wait()
        log.close()

    failures = 0
    for spec, result, expected in zip(specs, results, reference):
        if result is None or not result.ok:
            err = "no result" if result is None else result.error
            print(f"  FAIL {spec.kind} {spec.job_hash[:12]}: {err}",
                  file=sys.stderr)
            failures += 1
        elif result.value != expected:
            print(f"  FAIL {spec.kind} {spec.job_hash[:12]}: "
                  "diverged from serial reference", file=sys.stderr)
            failures += 1
    cached = sum(1 for r in results if r is not None and r.cached)
    print(f"fleet-serve smoke: {len(specs)} job(s) in {elapsed:.1f}s — "
          f"{cached} cached, {stats['computed']} computed on the fleet, "
          f"{failures} mismatch(es)")
    if failures:
        print("fleet-serve smoke: FAILED", file=sys.stderr)
        return 1
    if cached < 3:
        print("fleet-serve smoke: FAILED — pre-warmed entries missed the "
              "cache path", file=sys.stderr)
        return 1
    print("fleet-serve smoke: OK — broker-dispatch serving matches the "
          "serial reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
