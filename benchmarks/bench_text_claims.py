"""§III/§IV running-text claims measured on the cycle-level simulator.

TXT1: an input event is consumed in 48 clock cycles = 120 ns at 400 MHz,
updating all sensitive membrane potentials serially (one per cluster-
cycle).  TXT2: DVS-Gesture activity of 1.2-4.9% implies 7.1-23.12 ms,
141-43 inf/s and 80-261 µJ per inference.
"""

import numpy as np
import pytest

from repro.analysis import ComparisonRow, render_comparison
from repro.energy import DATASET_EVENT_ANCHORS, EfficiencyModel
from repro.events import EventStream
from repro.hw import SNE, PAPER_CONFIG, LayerGeometry, LayerKind, LayerProgram, SNEConfig


def test_txt1_single_event_48_cycles(benchmark, report):
    cfg = SNEConfig(n_slices=1, cycles_per_fire=0, cycles_per_reset=0)
    g = LayerGeometry(LayerKind.CONV, 1, 8, 8, 4, 8, 8, kernel=3, padding=1)
    prog = LayerProgram(g, np.ones((4, 1, 3, 3), dtype=np.int64), threshold=50, leak=0)
    stream = EventStream([0], [0], [4], [4], (1, 1, 8, 8))

    def run_single_event():
        _, stats = SNE(cfg).run_layer(prog, stream)
        return stats

    stats = benchmark(run_single_event)
    event_time_ns = stats.time_s(cfg) * 1e9
    report.add(
        render_comparison(
            [
                ComparisonRow("cycles per event", 48, stats.cycles, "cycles"),
                ComparisonRow("event time @ 400 MHz", 120.0, event_time_ns, "ns"),
                ComparisonRow("membrane updates (3x3 x 4 ch)", 36, stats.sops, "SOP"),
            ],
            title="TXT1 — one UPDATE event through the sequencer window",
        )
    )
    assert stats.cycles == 48
    assert event_time_ns == pytest.approx(120.0)
    assert stats.sops == 36  # 9 receptive-field taps x 4 output channels


def test_txt2_gesture_inference_window(benchmark, report):
    eff = EfficiencyModel()
    best_events, worst_events = DATASET_EVENT_ANCHORS["ibm_dvs_gesture"]

    def estimate():
        return (
            eff.inference(best_events, PAPER_CONFIG),
            eff.inference(worst_events, PAPER_CONFIG),
        )

    best, worst = benchmark(estimate)
    report.add(
        render_comparison(
            [
                ComparisonRow("best-case inference time", 7.1, best.time_s * 1e3, "ms"),
                ComparisonRow("worst-case inference time", 23.12, worst.time_s * 1e3, "ms"),
                ComparisonRow("best-case rate", 141, best.rate_inf_s, "inf/s"),
                ComparisonRow("worst-case rate", 43, worst.rate_inf_s, "inf/s"),
                ComparisonRow("best-case energy", 80, best.energy_uj, "uJ"),
                ComparisonRow("worst-case energy", 261, worst.energy_uj, "uJ"),
            ],
            title="TXT2 — DVS-Gesture inference window (1.2-4.9% activity)",
        )
    )
    assert best.time_s * 1e3 == pytest.approx(7.1, rel=0.01)
    assert worst.time_s * 1e3 == pytest.approx(23.12, rel=0.01)
    assert best.energy_uj == pytest.approx(80, rel=0.01)
    assert worst.energy_uj == pytest.approx(261, rel=0.01)


def test_txt1_serial_updates_one_sop_per_cluster_cycle(benchmark, report):
    """'SNE takes 48 clock cycles to consume an input event and update
    all membrane potentials serially': within one cluster, updates are
    TDM-serial — never more than one per cycle."""
    cfg = SNEConfig(n_slices=1)
    rng = np.random.default_rng(0)
    g = LayerGeometry(LayerKind.CONV, 2, 16, 16, 4, 16, 16, kernel=3, padding=1)
    prog = LayerProgram(g, rng.integers(-2, 3, (4, 2, 3, 3)), threshold=30, leak=1)
    dense = (rng.random((10, 2, 16, 16)) < 0.05).astype(np.uint8)
    stream = EventStream.from_dense(dense)

    def run():
        _, stats = SNE(cfg).run_layer(prog, stream)
        return stats

    stats = benchmark(run)
    # SOPs can never exceed clusters x cycles (the serial TDM bound).
    bound = cfg.clusters_per_slice * stats.cycles
    report.add(
        render_comparison(
            [
                ComparisonRow("SOPs vs serial bound", bound, stats.sops, "SOP (<= bound)"),
                ComparisonRow("sequencer overruns", 0, stats.sequencer_overrun_cycles, "cycles"),
            ],
            title="TXT1 companion — serial TDM update bound",
        )
    )
    assert stats.sops <= bound
    assert stats.sequencer_overrun_cycles == 0
