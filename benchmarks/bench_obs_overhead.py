"""Observability overhead — instrumentation must stay under 3%.

PR 6's acceptance bar: the metrics registry, trace spans and NDJSON
journal added across the runtime ride every job the sweep executor
runs, so their cost has to be provably negligible on the workload the
paper's Fig. 5b timings come from (hardware-in-the-loop sample
evaluations through ``run_jobs``).

The measurement is paired: the identical job list runs alternately
with observability off (``obs.configure(False)``) and on (journal +
registry + per-run snapshot flush into a scratch directory).  Since
PR 10 the on arm carries the full production read/write path: it runs
under an ambient trace so histogram exemplar capture is live, and the
timed region includes the snapshot flush plus one SLO evaluation of
the default rules against the fresh journal and registry (what the
supervisor pays every tick).  The
gated figure is the **median over pairs of the pair-local CPU-time
ratio** (``time.process_time``; the serial executor keeps all work in
this process): instrumentation cost *is* CPU work, CPU time is immune
to preemption noise, the pair-local ratio cancels slow drift, and the
median rejects outlier pairs.  Wall clocks are recorded as info
metrics.  ``BENCH_obs_overhead.json`` feeds the same
``tools/bench_compare.py`` gate as the other benchmark records.
"""

import statistics
import time

from repro.analysis import render_table
from repro.events import SyntheticDVSGesture
from repro.hw import PAPER_CONFIG, HardwareEvaluator, compile_network
from repro.runtime import SerialExecutor, run_jobs
from repro.runtime import obs
from repro.runtime.slo import default_rules, evaluate_slos
from repro.snn import build_small_network

#: Paired repetitions; the median paired ratio absorbs noise.
PAIRS = 9

#: The acceptance bar — instrumentation may cost at most 3%.
MAX_OVERHEAD = 1.03


def _fig5b_jobs():
    # Long enough (~0.3 s serial) that per-job instrumentation cost is
    # resolvable above scheduler jitter at the 3% bar.
    data = SyntheticDVSGesture(size=16, n_steps=16).generate(n_per_class=2, seed=7)
    net = build_small_network(input_size=16, n_classes=11, channels=4,
                              hidden=16, seed=2)
    evaluator = HardwareEvaluator(
        compile_network(net, (2, 16, 16)), PAPER_CONFIG.with_slices(2)
    )
    return evaluator.sample_jobs(data)


def _timed_run(jobs):
    """One serial run; returns ``(run, cpu_seconds, wall_seconds)``."""
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    run = run_jobs(jobs, executor=SerialExecutor())
    return run, time.process_time() - cpu0, time.perf_counter() - wall0


def test_obs_overhead_on_fig5b_workload(report, bench_json, tmp_path):
    jobs = _fig5b_jobs()
    old_registry = obs.set_registry(obs.MetricsRegistry())
    try:
        obs.configure(False)
        _timed_run(jobs)  # warm caches/imports outside the measurement

        def run_off():
            obs.configure(False)
            return _timed_run(jobs)

        def run_on(pair):
            obs.set_registry(obs.MetricsRegistry())
            target = tmp_path / f"obs-{pair}"
            obs.configure(target)
            # The ambient span arms exemplar capture on every histogram
            # observation the run makes, as a traced serve request would.
            with obs.span("bench.run", kind="bench"):
                run, cpu, wall = _timed_run(jobs)
            cpu0 = time.process_time()
            wall0 = time.perf_counter()
            obs.flush_metrics()
            statuses = evaluate_slos(
                default_rules(),
                events=obs.read_journal(target / "journal.ndjson"),
                registry=obs.get_registry(),
            )
            assert statuses, "SLO evaluation produced no statuses"
            return run, cpu + time.process_time() - cpu0, \
                wall + time.perf_counter() - wall0

        offs, ons = [], []
        for pair in range(PAIRS):
            # Alternate which arm goes first so slow drift (thermal,
            # neighbours) cancels instead of biasing one arm.
            if pair % 2:
                on_run, *on_t = run_on(pair)
                off_run, *off_t = run_off()
            else:
                off_run, *off_t = run_off()
                on_run, *on_t = run_on(pair)
            assert [r.value for r in on_run.results] == [
                r.value for r in off_run.results
            ], "instrumentation changed results"
            offs.append(off_t)
            ons.append(on_t)

        # The journal really was written — this measured the real path.
        events = obs.read_journal(tmp_path / f"obs-{PAIRS - 1}" / "journal.ndjson")
        assert {e["event"] for e in events} >= {"run.start", "run.end", "run.jobs"}
        assert obs.read_metrics(tmp_path / f"obs-{PAIRS - 1}").counter(
            "repro_jobs_total").total() == len(jobs)
        # Exemplar capture was live on the measured path: the merged
        # fleet exposition links at least one bucket to the bench trace.
        prom = obs.read_metrics(tmp_path / f"obs-{PAIRS - 1}").render_prometheus()
        assert '# {trace_id="' in prom, "no exemplars captured on the on arm"
    finally:
        obs.configure(False)
        obs.set_registry(old_registry)

    # Pair-local CPU ratios cancel slow drift (the arms of one pair run
    # back to back); the median across pairs rejects outlier pairs.
    overhead = statistics.median(
        on[0] / off[0] for on, off in zip(ons, offs))
    cpu_off = min(t[0] for t in offs)
    cpu_on = min(t[0] for t in ons)
    report.add(
        render_table(
            ["pair", "off cpu [s]", "on cpu [s]", "off wall [s]", "on wall [s]"],
            [[i, f"{offs[i][0]:.4f}", f"{ons[i][0]:.4f}",
              f"{offs[i][1]:.4f}", f"{ons[i][1]:.4f}"] for i in range(PAIRS)],
            title=(
                f"observability overhead — {len(jobs)} Fig. 5b sample jobs, "
                f"median paired CPU ratio {overhead:.4f} (bar {MAX_OVERHEAD:.2f})"
            ),
        )
    )
    bench_json.metric("overhead_ratio", overhead, direction="lower", unit="x")
    bench_json.metric("obs_off_cpu_s", cpu_off, direction="info", unit="s")
    bench_json.metric("obs_on_cpu_s", cpu_on, direction="info", unit="s")
    bench_json.metric("obs_off_wall_s", min(t[1] for t in offs),
                      direction="info", unit="s")
    bench_json.metric("obs_on_wall_s", min(t[1] for t in ons),
                      direction="info", unit="s")
    assert overhead < MAX_OVERHEAD, (
        f"observability instrumentation costs {(overhead - 1):.1%} "
        f"(bar {MAX_OVERHEAD - 1:.0%}) on the Fig. 5b workload"
    )
