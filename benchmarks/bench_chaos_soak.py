"""Chaos soak — seeded fault budget, bit-identity, recovery latency.

The claim under gate: the supervised fleet absorbs the full seeded
fault budget — worker SIGKILLs, in-place chunk/result corruption, a
forced store eviction — while every round of traffic merges
bit-identical to a serial run, and the supervisor restores the fleet
within a bounded crash-to-restored latency.

Gating policy: the fault counts are gated ``higher`` — they are
deterministic for the fixed seed (the scheduler retries each fault
until a target exists), so a run that stops landing kills or
corruptions means the harness went soft, not that the machine got
slow.  ``recovery_s`` (worst crash-to-restored episode) is gated
``lower`` against a deliberately generous committed baseline: normal
recoveries are tick-scale (~0.1 s), the baseline allows lease-TTL
scale, so only a real stall — e.g. respawn waiting out a lease — trips
the gate, not scheduler jitter.  Requeues and wall time vary with
interleaving and are recorded as ``info``.
"""

from repro.analysis import render_table
from repro.runtime import run_chaos_soak

SEED = 20220322  # the paper's conference date; fixed in CI


def test_chaos_soak_budget_and_recovery(report, bench_json, tmp_path):
    soak = run_chaos_soak(
        tmp_path / "spool",
        cache_dir=tmp_path / "cache",
        seed=SEED,
        rounds=2,
        jobs_per_round=16,
        chunk_size=2,
        job_sleep_s=0.02,
        min_workers=1,
        max_workers=3,
        lease_ttl_s=1.5,
        kills=3,
        chunk_corruptions=2,
        result_corruptions=1,
        evictions=1,
        duration_s=4.0,
    )
    assert soak.ok, soak.summary()
    assert soak.chunks_completed == soak.chunks_submitted
    assert soak.recoveries, "kills landed but no recovery episode measured"
    worst_recovery = max(soak.recoveries)

    report.add(
        render_table(
            ["kills", "corrupt chunk", "corrupt result", "evictions",
             "requeues", "recoveries", "worst recovery [s]", "wall [s]"],
            [[soak.kills, soak.chunk_corruptions, soak.result_corruptions,
              soak.evictions, soak.requeues, len(soak.recoveries),
              f"{worst_recovery:.3f}", f"{soak.elapsed_s:.1f}"]],
            title=("chaos soak — supervised fleet under seeded faults, "
                   f"{soak.rounds} round(s) x {soak.jobs // max(soak.rounds, 1)}"
                   " jobs, bit-identical to serial"),
        )
    )
    bench_json.metric("kills", soak.kills, direction="higher")
    bench_json.metric("chunk_corruptions", soak.chunk_corruptions,
                      direction="higher")
    bench_json.metric("result_corruptions", soak.result_corruptions,
                      direction="higher")
    bench_json.metric("evictions", soak.evictions, direction="higher")
    bench_json.metric("recovery_s", worst_recovery, direction="lower", unit="s")
    # Episodes coalesce when two kills land inside one deficit window,
    # so the count is interleaving-dependent: info, with non-emptiness
    # asserted above.
    bench_json.metric("recovery_episodes", len(soak.recoveries),
                      direction="info")
    bench_json.metric("requeues", soak.requeues, direction="info")
    bench_json.metric("soak_wall_s", soak.elapsed_s, direction="info", unit="s")
