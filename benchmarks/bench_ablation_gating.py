"""ABL2 — clock-gating ablation.

§III-D.4: 'Units that do not have to update their internal state are
clock-gated to reduce power consumption.'  The power model's gating
residual expresses how much of the cluster switching power a gated
cluster still burns; setting it to 1.0 emulates a design without clock
gating.  The saving depends on utilisation, i.e. on how localised the
events' receptive fields are.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.energy import PowerModel
from repro.events import EventStream
from repro.hw import SNE, LayerGeometry, LayerKind, LayerProgram, SNEConfig


def localized_workload(seed=0):
    """Events confined to one corner: most clusters stay gated."""
    rng = np.random.default_rng(seed)
    g = LayerGeometry(LayerKind.CONV, 2, 32, 32, 2, 32, 32, kernel=3, padding=1)
    program = LayerProgram(g, rng.integers(-2, 3, (2, 2, 3, 3)), threshold=40, leak=1)
    dense = np.zeros((20, 2, 32, 32), dtype=np.uint8)
    corner = (rng.random((20, 2, 6, 6)) < 0.25).astype(np.uint8)
    dense[:, :, :6, :6] = corner
    return program, EventStream.from_dense(dense)


def test_gating_power_saving(benchmark, report):
    config = SNEConfig(n_slices=2)
    program, stream = localized_workload()

    def run():
        _, stats = SNE(config).run_layer(program, stream)
        return stats

    stats = benchmark(run)
    util = stats.utilization()
    assert util < 0.25  # the workload is localised by construction

    gated = PowerModel()
    ungated = PowerModel()
    ungated.gating_residual = 1.0  # no clock gating: full switching always

    p_gated = gated.total_mw(config.n_slices, util)
    p_ungated = ungated.total_mw(config.n_slices, util)
    saving = 1.0 - p_gated / p_ungated

    report.add(
        render_table(
            ["design", "utilization", "power [mW]"],
            [
                ["with clock gating (residual 0.2)", round(util, 4), p_gated],
                ["without clock gating", round(util, 4), p_ungated],
                ["saving", "", f"{saving * 100:.1f}%"],
            ],
            title="ABL2 — clock gating on a spatially localised workload",
        )
    )
    assert p_gated < p_ungated
    assert saving > 0.3  # most clusters idle => gating is a large win


def test_gating_saving_vanishes_at_full_utilization(benchmark, report):
    """At the paper's worst-case benchmark (everything updating) gating
    cannot help — the two designs must converge."""
    gated = PowerModel()
    ungated = PowerModel()
    ungated.gating_residual = 1.0

    def evaluate():
        return gated.total_mw(8, 1.0), ungated.total_mw(8, 1.0)

    p_gated, p_ungated = benchmark(evaluate)
    report.add(
        render_table(
            ["design", "power @ utilization 1.0 [mW]"],
            [["with clock gating", p_gated], ["without clock gating", p_ungated]],
            title="ABL2 — no gating benefit at full utilization",
        )
    )
    assert p_gated == pytest.approx(p_ungated)
