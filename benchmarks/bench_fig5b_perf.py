"""Fig. 5b — performance (GSOP/s) and energy per SOP vs slice count.

Performance is validated two ways: the analytical peak (slices x 16
clusters x 400 MHz) and a measured SOP rate from the cycle simulator
running the all-clusters-updating workload (the benchmarked kernel).
"""

import numpy as np
import pytest

from repro.analysis import ComparisonRow, render_comparison, render_table
from repro.energy import FIG5B_PJ_PER_SOP, EfficiencyModel
from repro.events import EventStream
from repro.hw import SNE, PAPER_CONFIG, LayerGeometry, LayerKind, LayerProgram, SNEConfig

PAPER_PERF_GSOPS = {1: 6.4, 2: 12.8, 4: 25.6, 8: 51.2}


@pytest.fixture(scope="module")
def eff():
    return EfficiencyModel()


def test_fig5b_performance_and_energy(benchmark, eff, report):
    def evaluate_sweep():
        out = {}
        for n in (1, 2, 4, 8):
            cfg = PAPER_CONFIG.with_slices(n)
            out[n] = (eff.performance_gsops(cfg), eff.energy_per_sop_pj(cfg))
        return out

    sweep = benchmark(evaluate_sweep)

    rows, comp = [], []
    for n, (gsops, esop) in sweep.items():
        rows.append([n, gsops, esop])
        comp.append(ComparisonRow(f"perf @ {n} slices", PAPER_PERF_GSOPS[n], gsops, "GSOP/s"))
        comp.append(ComparisonRow(f"energy/SOP @ {n} slices", FIG5B_PJ_PER_SOP[n], esop, "pJ"))
    report.add(
        render_table(
            ["slices", "performance [GSOP/s]", "energy/SOP [pJ]"],
            rows,
            title="Fig. 5b — performance and energy per synaptic operation",
        )
    )
    report.add(render_comparison(comp, title="Fig. 5b anchors"))

    # Shape: performance proportional to slices; energy/SOP decreasing.
    perfs = [sweep[n][0] for n in (1, 2, 4, 8)]
    assert perfs == [pytest.approx(6.4 * n) for n in (1, 2, 4, 8)]
    esops = [sweep[n][1] for n in (1, 2, 4, 8)]
    assert all(a > b for a, b in zip(esops, esops[1:]))
    assert esops[-1] == pytest.approx(0.221, abs=0.001)


def test_fig5b_measured_sop_rate_approaches_peak(benchmark, report):
    """The cycle simulator must sustain ~1 SOP/cluster/cycle when every
    cluster updates on every event (the peak-performance condition)."""
    cfg = SNEConfig(n_slices=1, cycles_per_fire=0, cycles_per_reset=1)

    def run_dense_layer():
        rng = np.random.default_rng(0)
        n_outputs = cfg.neurons_per_slice  # fill the slice exactly
        g = LayerGeometry(LayerKind.DENSE, 1, 4, 4, n_outputs, 1, 1)
        prog = LayerProgram(g, rng.integers(-1, 2, (n_outputs, 16)), threshold=120, leak=0)
        dense = (rng.random((10, 1, 4, 4)) < 0.3).astype(np.uint8)
        _, stats = SNE(cfg).run_layer(prog, EventStream.from_dense(dense))
        return stats

    stats = benchmark(run_dense_layer)
    # Every event updates all 1024 neurons across 16 clusters in 64+16
    # overrun cycles; utilisation = 1024 / (16 * 64) = 1.0.
    assert stats.utilization() == pytest.approx(1.0)
    measured_gsops = stats.sops_per_second(cfg) / 1e9
    report.add(
        render_table(
            ["quantity", "value"],
            [
                ["measured SOP rate (1 slice)", f"{measured_gsops:.2f} GSOP/s"],
                ["analytical peak (1 slice)", "6.40 GSOP/s"],
                ["utilization", stats.utilization()],
            ],
            title="Fig. 5b companion — simulator sustains the peak SOP rate",
        )
    )
    assert measured_gsops == pytest.approx(6.4, rel=0.05)
