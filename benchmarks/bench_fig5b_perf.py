"""Fig. 5b — performance (GSOP/s) and energy per SOP vs slice count.

Performance is validated two ways: the analytical peak (slices x 16
clusters x 400 MHz) and a measured SOP rate from the cycle simulator
running the all-clusters-updating workload (the benchmarked kernel).
The same workload also pins down the vectorised event loop's speedup
over the per-event reference path (bit-identical outputs, >=3x faster)
and emits ``BENCH_fig5b_perf.json`` for the CI regression gate.
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.analysis import ComparisonRow, render_comparison, render_table
from repro.energy import FIG5B_PJ_PER_SOP, EfficiencyModel
from repro.events import EventStream
from repro.hw import SNE, PAPER_CONFIG, LayerGeometry, LayerKind, LayerProgram, SNEConfig

PAPER_PERF_GSOPS = {1: 6.4, 2: 12.8, 4: 25.6, 8: 51.2}


@pytest.fixture(scope="module")
def eff():
    return EfficiencyModel()


def test_fig5b_performance_and_energy(benchmark, eff, report):
    def evaluate_sweep():
        out = {}
        for n in (1, 2, 4, 8):
            cfg = PAPER_CONFIG.with_slices(n)
            out[n] = (eff.performance_gsops(cfg), eff.energy_per_sop_pj(cfg))
        return out

    sweep = benchmark(evaluate_sweep)

    rows, comp = [], []
    for n, (gsops, esop) in sweep.items():
        rows.append([n, gsops, esop])
        comp.append(ComparisonRow(f"perf @ {n} slices", PAPER_PERF_GSOPS[n], gsops, "GSOP/s"))
        comp.append(ComparisonRow(f"energy/SOP @ {n} slices", FIG5B_PJ_PER_SOP[n], esop, "pJ"))
    report.add(
        render_table(
            ["slices", "performance [GSOP/s]", "energy/SOP [pJ]"],
            rows,
            title="Fig. 5b — performance and energy per synaptic operation",
        )
    )
    report.add(render_comparison(comp, title="Fig. 5b anchors"))

    # Shape: performance proportional to slices; energy/SOP decreasing.
    perfs = [sweep[n][0] for n in (1, 2, 4, 8)]
    assert perfs == [pytest.approx(6.4 * n) for n in (1, 2, 4, 8)]
    esops = [sweep[n][1] for n in (1, 2, 4, 8)]
    assert all(a > b for a, b in zip(esops, esops[1:]))
    assert esops[-1] == pytest.approx(0.221, abs=0.001)


def _dense_workload(cfg):
    """The all-clusters-updating workload of the Fig. 5b companion."""
    rng = np.random.default_rng(0)
    n_outputs = cfg.neurons_per_slice  # fill the slice exactly
    g = LayerGeometry(LayerKind.DENSE, 1, 4, 4, n_outputs, 1, 1)
    prog = LayerProgram(g, rng.integers(-1, 2, (n_outputs, 16)), threshold=120, leak=0)
    dense = (rng.random((10, 1, 4, 4)) < 0.3).astype(np.uint8)
    return prog, EventStream.from_dense(dense)


def test_fig5b_measured_sop_rate_approaches_peak(benchmark, report, bench_json):
    """The cycle simulator must sustain ~1 SOP/cluster/cycle when every
    cluster updates on every event (the peak-performance condition)."""
    cfg = SNEConfig(n_slices=1, cycles_per_fire=0, cycles_per_reset=1)

    def run_dense_layer():
        prog, stream = _dense_workload(cfg)
        _, stats = SNE(cfg).run_layer(prog, stream)
        return stats

    stats = benchmark(run_dense_layer)
    # Every event updates all 1024 neurons across 16 clusters in 64+16
    # overrun cycles; utilisation = 1024 / (16 * 64) = 1.0.
    assert stats.utilization() == pytest.approx(1.0)
    measured_gsops = stats.sops_per_second(cfg) / 1e9
    report.add(
        render_table(
            ["quantity", "value"],
            [
                ["measured SOP rate (1 slice)", f"{measured_gsops:.2f} GSOP/s"],
                ["analytical peak (1 slice)", "6.40 GSOP/s"],
                ["utilization", stats.utilization()],
            ],
            title="Fig. 5b companion — simulator sustains the peak SOP rate",
        )
    )
    bench_json.from_benchmark(benchmark, "dense_layer_mean_s")
    bench_json.metric("measured_gsops", measured_gsops, direction="higher",
                      unit="GSOP/s")
    assert measured_gsops == pytest.approx(6.4, rel=0.05)


def test_fig5b_vectorized_event_loop_speedup(report, bench_json):
    """The numpy-batched event loop must beat the per-event reference by
    >=3x on the Fig. 5b workload while staying bit-identical (same
    output events, same statistics, down to the counter types)."""
    cfg = SNEConfig(n_slices=1, cycles_per_fire=0, cycles_per_reset=1)

    def run(batched):
        prog, stream = _dense_workload(cfg)
        return SNE(cfg).run_layer(prog, stream, batched=batched)

    # Bit-identity first: outputs and every counter must match exactly.
    out_vec, stats_vec = run(batched=True)
    out_ref, stats_ref = run(batched=False)
    assert out_vec == out_ref
    assert dataclasses.asdict(stats_vec) == dataclasses.asdict(stats_ref)

    def timed(batched):
        t0 = time.perf_counter()
        run(batched)
        return time.perf_counter() - t0

    run(True), run(False)  # warm the fanout table and allocator
    # Shared machines drift in speed mid-run; timing the two loops as
    # adjacent pairs and taking the median per-pair ratio keeps the
    # speedup figure stable even when absolute wall times are not.
    pairs = [(timed(False), timed(True)) for _ in range(7)]
    ref_s = min(r for r, _ in pairs)
    vec_s = min(v for _, v in pairs)
    ratios = sorted(r / v for r, v in pairs)
    speedup = ratios[len(ratios) // 2]
    events_per_s = len(_dense_workload(cfg)[1]) / vec_s
    report.add(
        render_table(
            ["quantity", "value"],
            [
                ["per-event reference", f"{ref_s * 1e3:.2f} ms"],
                ["vectorised event loop", f"{vec_s * 1e3:.2f} ms"],
                ["speedup", f"{speedup:.1f}x"],
                ["event throughput", f"{events_per_s:,.0f} events/s"],
            ],
            title="Fig. 5b companion — vectorised vs per-event event loop",
        )
    )
    bench_json.timing("vectorized_s", vec_s)
    bench_json.timing("per_event_reference_s", ref_s)
    # The >=3x floor is asserted right here, machine-independently;
    # gating the ratio against a (faster) dev-machine baseline would
    # silently raise that bar, so the JSON record is informational.
    bench_json.metric("event_loop_speedup_x", speedup, direction="info", unit="x")
    assert speedup >= 3.0


def test_fig5b_compiled_kernel_matrix(report, bench_json):
    """Every registry kernel must stay bit-identical on the Fig. 5b
    workload.  ``kernel_numpy_s`` is gated against the committed
    baseline — the no-numba fallback floor — on every CI leg; when
    numba is importable its kernels must additionally clear >=3x over
    the numpy shim (median paired ratio), and ``kernel_numba_s`` rides
    along as an extra record the no-numba baseline simply ignores."""
    from repro.hw.kernels import available_kernels

    cfg = SNEConfig(n_slices=1, cycles_per_fire=0, cycles_per_reset=1)

    def run(kernel):
        prog, stream = _dense_workload(cfg)
        return SNE(cfg).run_layer(prog, stream, kernel=kernel)

    # Bit-identity across the whole matrix before any timing.
    out_ref, stats_ref = run("reference")
    out_np, stats_np = run("numpy")
    assert out_np == out_ref
    assert dataclasses.asdict(stats_np) == dataclasses.asdict(stats_ref)

    def timed(kernel):
        t0 = time.perf_counter()
        run(kernel)
        return time.perf_counter() - t0

    run("numpy")  # warm the fanout table and allocator
    numpy_s = min(timed("numpy") for _ in range(7))
    bench_json.timing("kernel_numpy_s", numpy_s)
    rows = [["numpy shim", f"{numpy_s * 1e3:.2f} ms"]]

    if available_kernels()["kernels"]["numba"]["available"]:
        out_nb, stats_nb = run("numba")
        assert out_nb == out_ref
        assert dataclasses.asdict(stats_nb) == dataclasses.asdict(stats_ref)
        run("numba")  # JIT compile outside the timed region
        # Adjacent pairs + median per-pair ratio, as above: stable on
        # machines whose absolute speed drifts mid-run.
        pairs = [(timed("numpy"), timed("numba")) for _ in range(7)]
        numba_s = min(b for _, b in pairs)
        ratios = sorted(a / b for a, b in pairs)
        speedup = ratios[len(ratios) // 2]
        bench_json.timing("kernel_numba_s", numba_s)
        bench_json.metric("kernel_speedup_x", speedup, direction="info", unit="x")
        rows += [["numba kernels", f"{numba_s * 1e3:.2f} ms"],
                 ["speedup over numpy", f"{speedup:.1f}x"]]
    else:
        speedup = None
        rows.append(["numba kernels", "unavailable -> numpy fallback "
                     "(bit-identical, gated by kernel_numpy_s)"])
    report.add(
        render_table(
            ["quantity", "value"], rows,
            title="Fig. 5b companion — compiled kernel matrix",
        )
    )
    if speedup is not None:
        assert speedup >= 3.0
