"""Table I (energy/rate columns) + §IV-B text — inference cost intervals.

The paper derives inference time from the event count (48 cycles =
120 ns per event at 400 MHz), energy as power x time, and rate as the
inverse: NMNIST 43-142 µJ at 261-79.5 inf/s, DVS-Gesture 80-261 µJ at
141-43 inf/s, from the observed 1.2-4.9 % network activity.
"""

import pytest

from repro.analysis import ComparisonRow, render_comparison, render_table
from repro.energy import (
    DATASET_EVENT_ANCHORS,
    DVS_GESTURE_ACTIVITY_RANGE,
    EfficiencyModel,
)
from repro.hw import PAPER_CONFIG

PAPER_TABLE1 = {
    "nmnist": {"energy_uj": (43.0, 142.0), "rate": (261.0, 79.5)},
    "ibm_dvs_gesture": {"energy_uj": (80.0, 261.0), "rate": (141.0, 43.0)},
}
PAPER_TIMES_MS = {"ibm_dvs_gesture": (7.1, 23.12)}


@pytest.fixture(scope="module")
def eff():
    return EfficiencyModel()


def test_table1_inference_energy_and_rate(benchmark, eff, report):
    def evaluate_all():
        return {
            name: eff.dataset_range(name, PAPER_CONFIG)
            for name in DATASET_EVENT_ANCHORS
        }

    results = benchmark(evaluate_all)

    rows, comp = [], []
    for name, (best, worst) in results.items():
        rows.append(
            [
                name,
                f"{best.energy_uj:.0f} - {worst.energy_uj:.0f}",
                f"{best.rate_inf_s:.0f} - {worst.rate_inf_s:.1f}",
                f"{best.time_s * 1e3:.2f} - {worst.time_s * 1e3:.2f}",
            ]
        )
        paper = PAPER_TABLE1[name]
        comp.extend(
            [
                ComparisonRow(f"{name} best energy", paper["energy_uj"][0], best.energy_uj, "uJ"),
                ComparisonRow(f"{name} worst energy", paper["energy_uj"][1], worst.energy_uj, "uJ"),
                ComparisonRow(f"{name} best rate", paper["rate"][0], best.rate_inf_s, "inf/s"),
                ComparisonRow(f"{name} worst rate", paper["rate"][1], worst.rate_inf_s, "inf/s"),
            ]
        )
    report.add(
        render_table(
            ["dataset", "energy [uJ/inf]", "rate [inf/s]", "time [ms]"],
            rows,
            title="Table I (energy/rate) — inference cost intervals",
        )
    )
    report.add(render_comparison(comp, title="Table I anchors"))

    for row in comp:
        assert row.relative_error < 0.02, row.metric

    best, worst = results["ibm_dvs_gesture"]
    assert best.time_s * 1e3 == pytest.approx(PAPER_TIMES_MS["ibm_dvs_gesture"][0], rel=0.01)
    assert worst.time_s * 1e3 == pytest.approx(PAPER_TIMES_MS["ibm_dvs_gesture"][1], rel=0.01)


def test_table1_energy_scales_with_activity(benchmark, eff, report):
    """The proportionality behind the interval: energy tracks activity."""
    lo_act, hi_act = DVS_GESTURE_ACTIVITY_RANGE
    best_events, worst_events = DATASET_EVENT_ANCHORS["ibm_dvs_gesture"]

    def sweep():
        out = []
        for frac in (0.25, 0.5, 0.75, 1.0):
            activity = lo_act + frac * (hi_act - lo_act)
            events = eff.events_from_activity(activity, hi_act, worst_events)
            out.append((activity, eff.inference(events, PAPER_CONFIG)))
        return out

    points = benchmark(sweep)
    report.add(
        render_table(
            ["network activity", "events", "energy [uJ]", "rate [inf/s]"],
            [[f"{a:.3f}", est.n_events, est.energy_uj, est.rate_inf_s] for a, est in points],
            title="Table I companion — energy/rate across the 1.2-4.9% activity range",
        )
    )
    energies = [est.energy_uj for _, est in points]
    assert all(a < b for a, b in zip(energies, energies[1:]))
    # Endpoint sanity: full activity reproduces the worst-case energy.
    assert energies[-1] == pytest.approx(261, rel=0.02)
