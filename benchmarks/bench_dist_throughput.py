"""Distributed queue throughput — chunk rate, parity, requeue recovery.

Two claims the fleet layer must uphold before sweeps move off-machine:

1. the ``cluster`` backend is a *correct* transport: a sweep pushed
   through spool files and worker processes is bit-identical to the
   serial reference, and the queue overhead stays small enough that a
   two-worker fleet sustains a healthy chunk rate;
2. failure recovery is bounded: a worker SIGKILLed mid-chunk costs one
   lease expiry + requeue, after which a surviving worker finishes the
   sweep with identical results.

Gating policy: the deterministic counters are gated
(``chunks_completed`` and ``recovery_requeues`` must never drop — a
queue that stops chunking or a recovery path that stops requeueing is
a regression regardless of machine speed); the wall time and rates
(``spool_wall_s``, ``chunks_per_s``, ``jobs_per_s``) and the recovery
latency (``requeue_recovery_s``, dominated by the configured lease
TTL) are recorded as ``info`` — a ~50 ms fork-and-poll-bound wall is
bimodal run to run, which the same suite's scaling benchmark already
learned puts it past the 20% budget (its warm timings are info for the
same reason).  ``tools/bench_compare.py`` still fails the gate if this
record stops being emitted.
"""

import json
import multiprocessing
import os
import signal
import time

from repro.analysis import render_table
from repro.runtime import (
    Broker,
    ClusterBackend,
    canonical_json,
    dse_grid,
    dse_jobs,
    register_runner,
    run_jobs,
    worker_loop,
)
from repro.runtime.jobs import JobSpec

SWEEP_JOBS = dse_jobs(
    dse_grid(slices=(1, 2, 3, 4, 5, 6, 7, 8), voltages=(None, 0.7, 0.9, 1.0))
)  # 32 design points


@register_runner("bench_dist_sleep")
def _run_bench_dist_sleep(params, payload):
    time.sleep(params["sleep_s"])
    return {"x": params["x"]}


def _sleep_job(x: int, sleep_s: float) -> JobSpec:
    return JobSpec(kind="bench_dist_sleep",
                   key=canonical_json({"x": x, "sleep_s": sleep_s}))


def _payload(results) -> bytes:
    return json.dumps(
        [{"hash": r.job_hash, "ok": r.ok, "value": r.value, "error": r.error}
         for r in results],
        sort_keys=True,
    ).encode()


def test_cluster_chunk_throughput(report, bench_json):
    reference = run_jobs(SWEEP_JOBS, executor="serial")
    backend = ClusterBackend(workers=2, chunk_size=2, timeout=300.0)
    # Best of three: one spooled run is ~50 ms and fork/poll jitter
    # would eat the gate's tolerance; the minimum is the stable
    # no-contention cost of the queue machinery.
    wall = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        run = run_jobs(SWEEP_JOBS, executor=backend)
        wall = min(wall, time.perf_counter() - start)
        assert _payload(run.results) == _payload(reference.results)
    stats = backend.last_stats
    assert stats is not None and stats.chunks_completed == 16
    chunks_per_s = stats.chunks_completed / wall
    jobs_per_s = len(SWEEP_JOBS) / wall

    report.add(
        render_table(
            ["path", "jobs", "chunks", "wall [s]", "chunks/s", "jobs/s"],
            [["cluster x2 (spool)", len(SWEEP_JOBS), stats.chunks_completed,
              f"{wall:.3f}", f"{chunks_per_s:.1f}", f"{jobs_per_s:.1f}"]],
            title="dist throughput — 32-point DSE sweep over the spool queue",
        )
    )
    bench_json.metric("spool_wall_s", wall, direction="info", unit="s")
    bench_json.metric("chunks_completed", stats.chunks_completed,
                      direction="higher")
    bench_json.metric("chunks_per_s", chunks_per_s, direction="info", unit="1/s")
    bench_json.metric("jobs_per_s", jobs_per_s, direction="info", unit="1/s")


def test_requeue_recovery_latency(report, bench_json, tmp_path):
    ttl = 0.5
    jobs = [_sleep_job(i, 0.15) for i in range(4)]
    reference = run_jobs(jobs, executor="serial")
    broker = Broker(tmp_path, lease_ttl_s=ttl, poll_s=0.01)
    broker.submit(jobs, chunk_size=1)

    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(
        target=worker_loop, args=(str(tmp_path),),
        kwargs=dict(worker_id="victim", poll_s=0.01, lease_ttl_s=ttl),
        daemon=True,
    )
    victim.start()
    while not list((tmp_path / "claims").glob("*.claim")):
        time.sleep(0.005)
    time.sleep(0.05)  # let the victim get mid-chunk
    os.kill(victim.pid, signal.SIGKILL)
    killed_at = time.perf_counter()
    victim.join()

    rescuer = ctx.Process(
        target=worker_loop, args=(str(tmp_path),),
        kwargs=dict(worker_id="rescuer", poll_s=0.01, lease_ttl_s=ttl,
                    drain=True),
        daemon=True,
    )
    rescuer.start()
    try:
        results = broker.collect(timeout=120)
    finally:
        rescuer.kill()
        rescuer.join()
    recovery = time.perf_counter() - killed_at

    assert _payload(results) == _payload(reference.results)
    assert broker.stats.requeues >= 1

    report.add(
        render_table(
            ["lease ttl [s]", "requeues", "kill -> done [s]"],
            [[f"{ttl:g}", broker.stats.requeues, f"{recovery:.3f}"]],
            title="dist recovery — worker SIGKILLed mid-chunk, sweep completes",
        )
    )
    bench_json.metric("requeue_recovery_s", recovery, direction="info", unit="s")
    bench_json.metric("recovery_requeues", broker.stats.requeues,
                      direction="higher")
