"""ABL6 — weight-precision ablation around the paper's 4-bit choice.

SNE fixes synaptic weights at 4 bits (Table II); the area of the filter
buffers and the datapath scale with that width, and the paper's
accuracy claim is that 4 bits with quantisation-aware training costs
nothing.  The ablation trains the same network at 2/3/4/8 bits and at
float, and reports accuracy next to the relative weight-storage cost.
"""

import pytest

from repro.analysis import render_table
from repro.events import SyntheticDVSGesture
from repro.snn import (
    LIFParams,
    SlayerPdf,
    TrainConfig,
    Trainer,
    build_small_network,
    evaluate,
)


@pytest.fixture(scope="module")
def splits():
    data = SyntheticDVSGesture(size=16, n_steps=16).generate(n_per_class=8, seed=0)
    return data.split((0.65, 0.10, 0.25), seed=0)


def train_at_precision(weight_bits, train, test, seed=1):
    lif = LIFParams(threshold=0.5, leak=0.05, surrogate=SlayerPdf(alpha=1.0, beta=4.0))
    net = build_small_network(
        input_size=16, n_classes=11, channels=6, hidden=48,
        weight_bits=weight_bits, lif=lif, seed=seed,
    )
    trainer = Trainer(net, TrainConfig(epochs=12, batch_size=11, lr=3e-3, seed=0))
    trainer.fit(train)
    return evaluate(net, test)


def test_weight_precision_ablation(benchmark, splits, report):
    train, _, test = splits

    def run_reference():
        return train_at_precision(4, train, test)

    acc4 = benchmark.pedantic(run_reference, rounds=1, iterations=1)
    accs = {4: acc4}
    for bits in (2, 8, None):
        accs[bits] = train_at_precision(bits, train, test)

    rows = []
    for bits in (2, 4, 8, None):
        label = f"{bits}-bit" if bits else "float32"
        storage = (bits or 32) / 4.0
        rows.append([label, accs[bits], f"{storage:.1f}x"])
    report.add(
        render_table(
            ["weights", "test accuracy", "storage vs 4-bit"],
            rows,
            title="ABL6 — weight-precision ablation (synthetic gestures)",
        )
    )

    chance = 1 / 11
    # The paper's design point: 4-bit QAT holds up against full precision.
    assert accs[4] > 3 * chance
    assert accs[4] >= accs[None] - 0.15
    # And 8-bit buys nothing significant over 4-bit.
    assert accs[8] <= accs[4] + 0.15
