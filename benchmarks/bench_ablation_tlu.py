"""ABL1 — time-of-last-update (TLU) ablation.

§III-D.4.iii: 'a time-of-last-update is stored per Cluster; the next
neuron state is computed based on the current timestep value and TLU,
skipping the state update in the absence of input activity between two
successive timesteps.'  A TLU-less design walks every intermediate
timestep to apply the leak.  The simulator counts the skipped walks, so
the ablation quantifies the saving as a function of input burstiness.
"""

import numpy as np

from repro.analysis import render_table
from repro.events import EventStream
from repro.hw import SNE, LayerGeometry, LayerKind, LayerProgram, SNEConfig


def bursty_stream(n_steps, burst_every, events_per_burst, seed=0):
    """Events concentrated in bursts separated by idle gaps."""
    rng = np.random.default_rng(seed)
    ts, chs, xs, ys = [], [], [], []
    for t in range(0, n_steps, burst_every):
        ts.extend([t] * events_per_burst)
        chs.extend(rng.integers(0, 2, events_per_burst))
        xs.extend(rng.integers(0, 16, events_per_burst))
        ys.extend(rng.integers(0, 16, events_per_burst))
    stream = EventStream(
        np.array(ts), np.array(chs), np.array(xs), np.array(ys), (n_steps, 2, 16, 16)
    )
    return stream.merge(EventStream.empty(stream.shape))


def make_program(seed=0):
    rng = np.random.default_rng(seed)
    g = LayerGeometry(LayerKind.CONV, 2, 16, 16, 4, 16, 16, kernel=3, padding=1)
    return LayerProgram(g, rng.integers(-2, 3, (4, 2, 3, 3)), threshold=40, leak=1)


def test_tlu_skip_grows_with_idle_gaps(benchmark, report):
    config = SNEConfig(n_slices=1)
    program = make_program()

    def run(gap):
        stream = bursty_stream(n_steps=96, burst_every=gap, events_per_burst=12)
        _, stats = SNE(config).run_layer(program, stream)
        return stream, stats

    _, dense_stats = run(2)
    stream, stats = benchmark.pedantic(lambda: run(16), rounds=1, iterations=1)[:2]

    rows = []
    for gap in (2, 4, 8, 16):
        s, st = run(gap)
        # A TLU-less design spends one full leak walk (64 TDM cycles per
        # cluster) for every skipped idle step of every active cluster.
        extra_cycles = st.tlu_skipped_steps * config.neurons_per_cluster
        rows.append(
            [gap, len(s), st.cycles, st.tlu_skipped_steps, extra_cycles,
             f"{extra_cycles / st.cycles:.2f}x"]
        )
    report.add(
        render_table(
            ["burst gap [steps]", "events", "cycles (TLU)", "skipped walks",
             "extra cycles w/o TLU", "overhead"],
            rows,
            title="ABL1 — TLU leak-walk skipping vs input burstiness",
        )
    )

    # The sparser in time the traffic, the more the TLU saves.
    skips = [SNE(config).run_layer(program, bursty_stream(96, g, 12))[1].tlu_skipped_steps
             for g in (2, 8)]
    assert skips[1] > skips[0]
    assert dense_stats.tlu_skipped_steps >= 0


def test_tlu_never_changes_results(benchmark, report):
    """The TLU is purely an optimisation: leak catch-up must telescope.

    Verified here end-to-end by comparing a bursty stream against the
    same stream with explicit empty timesteps handled one by one through
    the dense golden model.
    """
    from repro.hw import simulate_layer_dense

    rng = np.random.default_rng(3)
    g = LayerGeometry(LayerKind.CONV, 2, 16, 16, 4, 16, 16, kernel=3, padding=1)
    program = LayerProgram(g, rng.integers(-1, 4, (4, 2, 3, 3)), threshold=4, leak=1)
    stream = bursty_stream(n_steps=64, burst_every=9, events_per_burst=10, seed=4)

    def run():
        out_hw, _ = SNE(SNEConfig(n_slices=1)).run_layer(program, stream)
        return out_hw

    out_hw = benchmark(run)
    out_gold = simulate_layer_dense(program, stream)  # walks every timestep
    report.add(
        render_table(
            ["path", "output events"],
            [["event-driven with TLU", len(out_hw)],
             ["dense per-step walk", len(out_gold)]],
            title="ABL1 — TLU semantic equivalence",
        )
    )
    assert len(out_hw) > 0  # the check must not pass vacuously
    assert out_hw == out_gold
