"""ABL4 — output FIFO / DMA bandwidth sensitivity (§III-D.3).

The paper claims a single output DMA 'can provide significantly more
bandwidth than required on a single SL output port' because activity is
sparse.  The ablation verifies it at paper-like sparsity and then finds
the regime (dense fire bursts + shallow FIFOs) where back-pressure
appears, quantifying how much margin the 16-deep FIFOs buy.
"""

import numpy as np

from repro.analysis import render_table
from repro.events import EventStream
from repro.hw import SNE, LayerGeometry, LayerKind, LayerProgram, SNEConfig


def firing_workload(threshold, seed=0):
    """Conv layer whose output activity is controlled by the threshold."""
    rng = np.random.default_rng(seed)
    g = LayerGeometry(LayerKind.CONV, 2, 16, 16, 4, 16, 16, kernel=3, padding=1)
    program = LayerProgram(g, np.abs(rng.integers(1, 4, (4, 2, 3, 3))), threshold=threshold, leak=0)
    dense = (rng.random((12, 2, 16, 16)) < 0.10).astype(np.uint8)
    return program, EventStream.from_dense(dense)


def test_no_stalls_at_paper_sparsity(benchmark, report):
    """At ~5% output activity the default FIFOs never back-pressure."""
    program, stream = firing_workload(threshold=25)
    config = SNEConfig(n_slices=1)

    def run():
        _, stats = SNE(config).run_layer(program, stream)
        return stats

    stats = benchmark(run)
    out_activity = stats.output_events / (4 * 16 * 16 * stream.n_steps)
    report.add(
        render_table(
            ["quantity", "value"],
            [
                ["output activity", f"{out_activity:.3f}"],
                ["output events", stats.output_events],
                ["FIFO stall cycles", stats.fifo_stall_cycles],
            ],
            title="ABL4 — no collector back-pressure at paper-like sparsity",
        )
    )
    assert out_activity < 0.15
    assert stats.fifo_stall_cycles == 0


def test_fifo_depth_sweep_under_dense_fire(benchmark, report):
    """Shallow FIFOs under dense firing stall; depth buys the margin."""
    program, stream = firing_workload(threshold=1, seed=1)  # fire storm

    def run_depth(depth):
        config = SNEConfig(n_slices=1, cluster_fifo_depth=depth)
        _, stats = SNE(config).run_layer(program, stream)
        return stats

    stats1 = benchmark.pedantic(lambda: run_depth(1), rounds=1, iterations=1)
    rows = [[1, stats1.output_events, stats1.fifo_stall_cycles]]
    stalls = {1: stats1.fifo_stall_cycles}
    for depth in (4, 16, 64):
        stats = run_depth(depth)
        rows.append([depth, stats.output_events, stats.fifo_stall_cycles])
        stalls[depth] = stats.fifo_stall_cycles
    report.add(
        render_table(
            ["cluster FIFO depth", "output events", "stall cycles"],
            rows,
            title="ABL4 — FIFO depth sweep under a fire storm",
        )
    )
    assert stalls[1] > 0  # depth 1 must choke on a storm
    assert stalls[64] <= stalls[4] <= stalls[1]
    assert stalls[64] == 0  # enough slack absorbs the worst burst

    # Semantics are depth-independent: only the timing changes.
    out1, _ = SNE(SNEConfig(n_slices=1, cluster_fifo_depth=1)).run_layer(program, stream)
    out64, _ = SNE(SNEConfig(n_slices=1, cluster_fifo_depth=64)).run_layer(program, stream)
    assert out1 == out64
