"""Table I (accuracy columns) — SLAYER-SRM baseline vs SNE-LIF-4b.

The paper trains the Fig. 6 network on NMNIST and IBM DVS-Gesture with
both neuron models and reports that the quantised SNE model slightly
improves on the SRM baseline (97.81->97.88 % and 92.42->92.80 %).

Substitution (DESIGN.md): the real datasets are unavailable offline, so
the same protocol runs on the synthetic equivalents at reduced geometry.
Absolute accuracy is not comparable; the *reproduced shape* is that both
models clear chance by a wide margin and SNE-LIF-4b matches or exceeds
the SRM baseline.
"""

import pytest

from repro.analysis import render_table
from repro.events import SyntheticDVSGesture, SyntheticNMNIST
from repro.snn import SLAYER_SRM, SNE_LIF_4B, TrainConfig, Trainer, evaluate

PAPER_ACCURACY = {
    "NMNIST": {"SNN (SLAYER-SRM)": 0.9781, "eCNN (SNE-LIF-4b)": 0.9788},
    "IBM DVS Gesture": {"SNN (SLAYER-SRM)": 0.9242, "eCNN (SNE-LIF-4b)": 0.9280},
}


def _train_and_eval(model, train, test, n_classes, epochs, seed=1):
    net = model.build(
        small=True, input_size=20, n_classes=n_classes, channels=8, hidden=64, seed=seed
    )
    trainer = Trainer(net, TrainConfig(epochs=epochs, batch_size=11, lr=3e-3, seed=0))
    trainer.fit(train)
    return evaluate(net, test), net


@pytest.fixture(scope="module")
def nmnist_splits():
    data = SyntheticNMNIST(size=20, n_steps=20, scale=2).generate(n_per_class=20, seed=0)
    return data.split((0.75, 0.10, 0.15), seed=0)  # the paper's NMNIST split


@pytest.fixture(scope="module")
def gesture_splits():
    data = SyntheticDVSGesture(size=20, n_steps=24).generate(n_per_class=16, seed=0)
    return data.split((0.65, 0.10, 0.25), seed=0)  # the paper's gesture split


def test_table1_accuracy_nmnist(benchmark, nmnist_splits, report):
    train, _, test = nmnist_splits

    def run():
        acc_srm, _ = _train_and_eval(SLAYER_SRM, train, test, 10, epochs=25)
        acc_lif, _ = _train_and_eval(SNE_LIF_4B, train, test, 10, epochs=25)
        return acc_srm, acc_lif

    acc_srm, acc_lif = benchmark.pedantic(run, rounds=1, iterations=1)
    report.add(
        render_table(
            ["dataset", "model", "paper acc", "measured acc (synthetic)"],
            [
                ["NMNIST", "SNN (SLAYER-SRM)", PAPER_ACCURACY["NMNIST"]["SNN (SLAYER-SRM)"], acc_srm],
                ["NMNIST", "eCNN (SNE-LIF-4b)", PAPER_ACCURACY["NMNIST"]["eCNN (SNE-LIF-4b)"], acc_lif],
            ],
            title="Table I (accuracy) — synthetic NMNIST, reduced geometry",
        )
    )
    # Shape: far above the 10% chance level; quantised LIF does not lose
    # to the float SRM baseline (the paper's 'slightly improved').
    assert acc_srm > 0.3
    assert acc_lif > 0.3
    assert acc_lif >= acc_srm - 0.10


def test_table1_accuracy_gesture(benchmark, gesture_splits, report):
    train, _, test = gesture_splits

    def run():
        acc_srm, _ = _train_and_eval(SLAYER_SRM, train, test, 11, epochs=25)
        acc_lif, _ = _train_and_eval(SNE_LIF_4B, train, test, 11, epochs=25)
        return acc_srm, acc_lif

    acc_srm, acc_lif = benchmark.pedantic(run, rounds=1, iterations=1)
    report.add(
        render_table(
            ["dataset", "model", "paper acc", "measured acc (synthetic)"],
            [
                ["IBM DVS Gesture", "SNN (SLAYER-SRM)",
                 PAPER_ACCURACY["IBM DVS Gesture"]["SNN (SLAYER-SRM)"], acc_srm],
                ["IBM DVS Gesture", "eCNN (SNE-LIF-4b)",
                 PAPER_ACCURACY["IBM DVS Gesture"]["eCNN (SNE-LIF-4b)"], acc_lif],
            ],
            title="Table I (accuracy) — synthetic DVS-Gesture, reduced geometry",
        )
    )
    assert acc_srm > 0.3  # chance is ~9%
    assert acc_lif > 0.3
    assert acc_lif >= acc_srm - 0.10
