"""Serving latency/throughput — streaming front end vs batch mode.

Three claims the serving layer must uphold:

1. **cache-hit round trips collapse**: a repeat request answered from
   the shared result store is at least 5x faster than cold compute
   (acceptance bar; in practice it is orders of magnitude) — the
   serve path reads the store without ever touching the backend pool;
2. **streaming adds no wrong answers**: the streamed per-job results
   are value-identical to a batch ``run_jobs`` over the same specs,
   for every registered backend;
3. **micro-batching carries concurrent load**: many clients submitting
   at once coalesce into shared dispatches, and the p50/p99 latency
   telemetry reports the round-trip distribution.

Wall-clock figures are machine-dependent and *reported*; determinism,
hit ratios and the 5x cache-hit bar are *asserted*.
"""

import asyncio
import statistics
import time

from repro.analysis import render_table
from repro.events import SyntheticDVSGesture
from repro.hw import PAPER_CONFIG, HardwareEvaluator, compile_network
from repro.runtime import (
    AsyncServer,
    ResultStore,
    available_backends,
    dse_grid,
    dse_jobs,
    run_jobs,
)
from repro.snn import build_small_network


def _hw_jobs():
    """Per-sample hardware-in-the-loop jobs: real compute (~0.1 s each),
    the workload where serving latency actually matters."""
    data = SyntheticDVSGesture(size=16, n_steps=8).generate(n_per_class=1, seed=11)
    net = build_small_network(input_size=16, n_classes=11, channels=4,
                              hidden=16, seed=3)
    evaluator = HardwareEvaluator(
        compile_network(net, (2, 16, 16)), PAPER_CONFIG.with_slices(2)
    )
    return evaluator.sample_jobs(data)


async def _serve_pass(server, jobs):
    """Submit every job concurrently; return (results, per-request RTs)."""
    loop = asyncio.get_running_loop()

    async def one(spec):
        start = loop.time()
        result = await server.submit(spec)
        return result, loop.time() - start

    pairs = await asyncio.gather(*(one(spec) for spec in jobs))
    return [r for r, _ in pairs], [lat for _, lat in pairs]


def _ms(seconds):
    return f"{seconds * 1e3:.2f}"


def test_cache_hit_roundtrip_5x_faster_than_cold_compute(benchmark, report, tmp_path,
                                                         bench_json):
    jobs = _hw_jobs()
    store = ResultStore(tmp_path / "serve")

    async def both_passes():
        async with AsyncServer(backend="thread", workers=4, cache=store,
                               batch_window_s=0.01, max_batch=8) as srv:
            cold = await _serve_pass(srv, jobs)
            warm = await _serve_pass(srv, jobs)
            return cold, warm, srv.stats()

    (cold_results, cold_lat), (warm_results, warm_lat), stats = asyncio.run(
        both_passes()
    )

    assert all(r.ok for r in cold_results)
    assert all(r.ok and r.cached for r in warm_results), "warm pass missed the store"
    assert [r.value for r in warm_results] == [r.value for r in cold_results]
    assert stats["cache_hits"] == len(jobs)

    cold_p50 = statistics.median(cold_lat)
    warm_p50 = statistics.median(warm_lat)
    speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
    # Acceptance bar: repeat-request round trip >= 5x faster than cold.
    assert speedup >= 5.0, (
        f"cache-hit round trip only {speedup:.1f}x faster "
        f"(cold p50 {cold_p50:.4f}s, warm p50 {warm_p50:.4f}s)"
    )

    # Steady-state warm timing for the benchmark record.
    async def warm_once():
        async with AsyncServer(backend="thread", workers=4, cache=store,
                               batch_window_s=0.01, max_batch=8) as srv:
            results, _ = await _serve_pass(srv, jobs)
            assert all(r.cached for r in results)

    benchmark(lambda: asyncio.run(warm_once()))

    bench_json.timing("cold_p50_s", cold_p50)
    # Sub-millisecond wall times are too noisy to gate at 20%; the
    # same-run speedup ratio is the stable regression signal.
    bench_json.metric("warm_p50_s", warm_p50, direction="info", unit="s")
    bench_json.metric("cache_hit_speedup_x", speedup, direction="info", unit="x")

    report.add(
        render_table(
            ["pass", "requests", "p50 RT [ms]", "max RT [ms]"],
            [
                ["cold (computed)", len(jobs), _ms(cold_p50), _ms(max(cold_lat))],
                ["warm (cache hit)", len(jobs), _ms(warm_p50), _ms(max(warm_lat))],
            ],
            title=(
                "serve latency — hardware-in-the-loop requests "
                f"(cache-hit speedup {speedup:.0f}x, bar: 5x)"
            ),
        )
    )


def test_streamed_results_match_batch_mode_across_backends(report, tmp_path):
    jobs = dse_jobs(dse_grid(slices=(1, 2, 3, 4, 5, 6, 7, 8),
                             voltages=(None, 0.7, 0.9, 1.0)))  # 32 points
    batch_start = time.perf_counter()
    reference = run_jobs(jobs, executor="serial")
    batch_elapsed = time.perf_counter() - batch_start
    rows = [["batch run_jobs", "serial", len(jobs), f"{batch_elapsed:.4f}", "-"]]

    for name in available_backends():
        async def streamed(backend_name=name):
            async with AsyncServer(backend=backend_name, workers=2,
                                   batch_window_s=0.005, max_batch=16) as srv:
                out = [None] * len(jobs)
                async for i, result in srv.stream(jobs):
                    out[i] = result
                return out, srv.stats()

        start = time.perf_counter()
        results, stats = asyncio.run(streamed())
        elapsed = time.perf_counter() - start
        assert [r.value for r in results] == [r.value for r in reference.results], (
            f"serve({name}) diverged from batch mode"
        )
        lat = stats["latency"]
        rows.append(["serve stream", name, len(jobs), f"{elapsed:.4f}",
                     f"p50 {_ms(lat['p50_s'])} / p99 {_ms(lat['p99_s'])} ms"])

    report.add(
        render_table(
            ["mode", "backend", "jobs", "total [s]", "request latency"],
            rows,
            title="serve vs batch — 32-point DSE sweep, value-identical",
        )
    )


def test_concurrent_clients_coalesce_into_micro_batches(report, tmp_path):
    jobs = dse_jobs(dse_grid(slices=tuple(range(1, 9)), voltages=(None, 0.9)))

    async def fan_in():
        async with AsyncServer(backend="serial", batch_window_s=0.05,
                               max_batch=64) as srv:
            results, lat = await _serve_pass(srv, jobs)
            return results, lat, srv.stats()

    results, lat, stats = asyncio.run(fan_in())
    assert all(r.ok for r in results)
    assert stats["batches"] < len(jobs), "no coalescing happened at all"
    assert stats["mean_batch"] > 1.0
    assert stats["latency"]["p99_s"] >= stats["latency"]["p50_s"]

    report.add(
        render_table(
            ["requests", "batches", "mean batch", "p50 [ms]", "p99 [ms]"],
            [[stats["requests"], stats["batches"], f"{stats['mean_batch']:.1f}",
              _ms(stats["latency"]["p50_s"]), _ms(stats["latency"]["p99_s"])]],
            title="serve micro-batching — 16 concurrent requests, one server",
        )
    )
