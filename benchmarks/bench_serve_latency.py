"""Serving latency/throughput — streaming front end vs batch mode.

Five claims the serving layer must uphold:

1. **cache-hit round trips collapse**: a repeat request answered from
   the shared result store is at least 5x faster than cold compute
   (acceptance bar; in practice it is orders of magnitude) — the
   serve path reads the store without ever touching the backend pool;
2. **streaming adds no wrong answers**: the streamed per-job results
   are value-identical to a batch ``run_jobs`` over the same specs,
   for every registered backend;
3. **micro-batching carries concurrent load**: many clients submitting
   at once coalesce into shared dispatches, and the p50/p99 latency
   telemetry reports the round-trip distribution;
4. **the broker plane holds the cache-hit SLO**: a server dispatching
   onto a spool-backed worker fleet answers warm requests within 2x of
   the local-dispatch leg (cache hits never cross the spool), stays
   value-identical to it cold, and both planes meet the p50/p99 SLO
   bars;
5. **admission control sheds, never corrupts**: past
   ``max_queue_depth`` the surplus is refused with a structured
   overload error while every accepted request completes
   bit-identically to a serial reference — none lost, none duplicated.

Wall-clock figures are machine-dependent and *reported*; determinism,
hit ratios, the 5x cache-hit bar, the 2x broker-vs-local bar and the
shed-losslessness invariant are *asserted*.
"""

import asyncio
import statistics
import threading
import time

from repro.analysis import render_table
from repro.events import SyntheticDVSGesture
from repro.hw import PAPER_CONFIG, HardwareEvaluator, compile_network
from repro.runtime import (
    AsyncServer,
    BrokerDispatcher,
    LocalDispatcher,
    ResultStore,
    ServerOverloadedError,
    available_backends,
    dse_grid,
    dse_jobs,
    run_jobs,
    worker_loop,
)
from repro.snn import build_small_network


def _hw_jobs():
    """Per-sample hardware-in-the-loop jobs: real compute (~0.1 s each),
    the workload where serving latency actually matters."""
    data = SyntheticDVSGesture(size=16, n_steps=8).generate(n_per_class=1, seed=11)
    net = build_small_network(input_size=16, n_classes=11, channels=4,
                              hidden=16, seed=3)
    evaluator = HardwareEvaluator(
        compile_network(net, (2, 16, 16)), PAPER_CONFIG.with_slices(2)
    )
    return evaluator.sample_jobs(data)


async def _serve_pass(server, jobs):
    """Submit every job concurrently; return (results, per-request RTs)."""
    loop = asyncio.get_running_loop()

    async def one(spec):
        start = loop.time()
        result = await server.submit(spec)
        return result, loop.time() - start

    pairs = await asyncio.gather(*(one(spec) for spec in jobs))
    return [r for r, _ in pairs], [lat for _, lat in pairs]


def _ms(seconds):
    return f"{seconds * 1e3:.2f}"


def test_cache_hit_roundtrip_5x_faster_than_cold_compute(benchmark, report, tmp_path,
                                                         bench_json):
    jobs = _hw_jobs()
    store = ResultStore(tmp_path / "serve")

    async def both_passes():
        async with AsyncServer(backend="thread", workers=4, cache=store,
                               batch_window_s=0.01, max_batch=8) as srv:
            cold = await _serve_pass(srv, jobs)
            warm = await _serve_pass(srv, jobs)
            return cold, warm, srv.stats()

    (cold_results, cold_lat), (warm_results, warm_lat), stats = asyncio.run(
        both_passes()
    )

    assert all(r.ok for r in cold_results)
    assert all(r.ok and r.cached for r in warm_results), "warm pass missed the store"
    assert [r.value for r in warm_results] == [r.value for r in cold_results]
    assert stats["cache_hits"] == len(jobs)

    cold_p50 = statistics.median(cold_lat)
    warm_p50 = statistics.median(warm_lat)
    speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
    # Acceptance bar: repeat-request round trip >= 5x faster than cold.
    assert speedup >= 5.0, (
        f"cache-hit round trip only {speedup:.1f}x faster "
        f"(cold p50 {cold_p50:.4f}s, warm p50 {warm_p50:.4f}s)"
    )

    # Steady-state warm timing for the benchmark record.
    async def warm_once():
        async with AsyncServer(backend="thread", workers=4, cache=store,
                               batch_window_s=0.01, max_batch=8) as srv:
            results, _ = await _serve_pass(srv, jobs)
            assert all(r.cached for r in results)

    benchmark(lambda: asyncio.run(warm_once()))

    bench_json.timing("cold_p50_s", cold_p50)
    # Sub-millisecond wall times are too noisy to gate at 20%; the
    # same-run speedup ratio is the stable regression signal.
    bench_json.metric("warm_p50_s", warm_p50, direction="info", unit="s")
    bench_json.metric("cache_hit_speedup_x", speedup, direction="info", unit="x")

    report.add(
        render_table(
            ["pass", "requests", "p50 RT [ms]", "max RT [ms]"],
            [
                ["cold (computed)", len(jobs), _ms(cold_p50), _ms(max(cold_lat))],
                ["warm (cache hit)", len(jobs), _ms(warm_p50), _ms(max(warm_lat))],
            ],
            title=(
                "serve latency — hardware-in-the-loop requests "
                f"(cache-hit speedup {speedup:.0f}x, bar: 5x)"
            ),
        )
    )


def test_streamed_results_match_batch_mode_across_backends(report, tmp_path):
    jobs = dse_jobs(dse_grid(slices=(1, 2, 3, 4, 5, 6, 7, 8),
                             voltages=(None, 0.7, 0.9, 1.0)))  # 32 points
    batch_start = time.perf_counter()
    reference = run_jobs(jobs, executor="serial")
    batch_elapsed = time.perf_counter() - batch_start
    rows = [["batch run_jobs", "serial", len(jobs), f"{batch_elapsed:.4f}", "-"]]

    for name in available_backends():
        async def streamed(backend_name=name):
            async with AsyncServer(backend=backend_name, workers=2,
                                   batch_window_s=0.005, max_batch=16) as srv:
                out = [None] * len(jobs)
                async for i, result in srv.stream(jobs):
                    out[i] = result
                return out, srv.stats()

        start = time.perf_counter()
        results, stats = asyncio.run(streamed())
        elapsed = time.perf_counter() - start
        assert [r.value for r in results] == [r.value for r in reference.results], (
            f"serve({name}) diverged from batch mode"
        )
        lat = stats["latency"]
        rows.append(["serve stream", name, len(jobs), f"{elapsed:.4f}",
                     f"p50 {_ms(lat['p50_s'])} / p99 {_ms(lat['p99_s'])} ms"])

    report.add(
        render_table(
            ["mode", "backend", "jobs", "total [s]", "request latency"],
            rows,
            title="serve vs batch — 32-point DSE sweep, value-identical",
        )
    )


def test_concurrent_clients_coalesce_into_micro_batches(report, tmp_path):
    jobs = dse_jobs(dse_grid(slices=tuple(range(1, 9)), voltages=(None, 0.9)))

    async def fan_in():
        async with AsyncServer(backend="serial", batch_window_s=0.05,
                               max_batch=64) as srv:
            results, lat = await _serve_pass(srv, jobs)
            return results, lat, srv.stats()

    results, lat, stats = asyncio.run(fan_in())
    assert all(r.ok for r in results)
    assert stats["batches"] < len(jobs), "no coalescing happened at all"
    assert stats["mean_batch"] > 1.0
    assert stats["latency"]["p99_s"] >= stats["latency"]["p50_s"]

    report.add(
        render_table(
            ["requests", "batches", "mean batch", "p50 [ms]", "p99 [ms]"],
            [[stats["requests"], stats["batches"], f"{stats['mean_batch']:.1f}",
              _ms(stats["latency"]["p50_s"]), _ms(stats["latency"]["p99_s"])]],
            title="serve micro-batching — 16 concurrent requests, one server",
        )
    )


# -- dispatcher legs: local vs broker plane ---------------------------------

#: SLO bars both dispatcher modes must meet (generous by design — these
#: catch architectural regressions, not scheduler jitter).
SLO_COLD_P99_S = 10.0
SLO_WARM_P50_S = 0.050
SLO_WARM_P99_S = 0.250


def test_broker_dispatch_leg_holds_cache_hit_slo(report, tmp_path, bench_json):
    """The fleet-serving leg: one server per dispatcher mode, same
    workload, same store discipline.  Asserted: value-identical cold
    results across planes, warm passes fully cache-hit, warm p50 within
    2x of the local leg, and the p50/p99 SLO bars on both."""
    jobs = _hw_jobs()
    spool = tmp_path / "spool"
    stop = threading.Event()
    worker = threading.Thread(
        target=worker_loop,
        kwargs=dict(spool_dir=spool, worker_id="bench-w0", poll_s=0.005,
                    lease_ttl_s=30.0, stop=stop),
        daemon=True,
    )
    worker.start()

    async def run_leg(dispatcher, store):
        async with AsyncServer(dispatcher=dispatcher, cache=store,
                               batch_window_s=0.01, max_batch=8) as srv:
            cold = await _serve_pass(srv, jobs)
            warm = await _serve_pass(srv, jobs)
            stats = srv.stats()
        await dispatcher.aclose()
        return cold, warm, stats

    try:
        (lc_res, lc_lat), (lw_res, lw_lat), l_stats = asyncio.run(
            run_leg(LocalDispatcher("thread", workers=4),
                    ResultStore(tmp_path / "local-store")))
        (bc_res, bc_lat), (bw_res, bw_lat), b_stats = asyncio.run(
            run_leg(BrokerDispatcher(spool, poll_s=0.005),
                    ResultStore(tmp_path / "broker-store")))
    finally:
        stop.set()
        worker.join(timeout=30)

    assert all(r.ok for r in lc_res) and all(r.ok for r in bc_res)
    assert [r.value for r in bc_res] == [r.value for r in lc_res], (
        "broker plane diverged from local plane")
    assert all(r.cached for r in lw_res) and all(r.cached for r in bw_res)
    assert b_stats["backend"] == "broker" and l_stats["backend"] == "thread"

    rows = []
    legs = {}
    for name, cold_lat, warm_lat in (("local", lc_lat, lw_lat),
                                     ("broker", bc_lat, bw_lat)):
        figures = {
            "cold_p50": statistics.median(cold_lat),
            "cold_p99": max(cold_lat),
            "warm_p50": statistics.median(warm_lat),
            "warm_p99": max(warm_lat),
        }
        legs[name] = figures
        # The SLO gate, per dispatcher mode.
        assert figures["cold_p99"] <= SLO_COLD_P99_S, (
            f"{name} cold p99 {figures['cold_p99']:.3f}s over SLO")
        assert figures["warm_p50"] <= SLO_WARM_P50_S, (
            f"{name} warm p50 {figures['warm_p50']:.4f}s over SLO")
        assert figures["warm_p99"] <= SLO_WARM_P99_S, (
            f"{name} warm p99 {figures['warm_p99']:.4f}s over SLO")
        rows.append([name, len(jobs), _ms(figures["cold_p50"]),
                     _ms(figures["cold_p99"]), _ms(figures["warm_p50"]),
                     _ms(figures["warm_p99"])])

    # Acceptance bar: cache hits never cross the spool, so the broker
    # leg's warm p50 must sit within 2x of the local leg's.  The local
    # figure is floored at 2.5 ms: both legs are pure store reads in
    # the low-millisecond range where scheduler jitter alone swings the
    # raw ratio past 2x, while an accidental spool round trip would
    # cost a poll interval plus chunk I/O — well past the floored bar.
    warm_floor = max(legs["local"]["warm_p50"], 2.5e-3)
    warm_ratio = legs["broker"]["warm_p50"] / warm_floor
    assert legs["broker"]["warm_p50"] <= 2.0 * warm_floor, (
        f"broker warm p50 {legs['broker']['warm_p50']:.4f}s is "
        f"{warm_ratio:.1f}x the local leg")

    bench_json.timing("broker_cold_p50_s", legs["broker"]["cold_p50"])
    bench_json.metric("broker_warm_p50_s", legs["broker"]["warm_p50"],
                      direction="info", unit="s")
    bench_json.metric("broker_warm_over_local_x", warm_ratio,
                      direction="info", unit="x")

    report.add(
        render_table(
            ["dispatch", "requests", "cold p50 [ms]", "cold p99 [ms]",
             "warm p50 [ms]", "warm p99 [ms]"],
            rows,
            title=(
                "serve dispatcher legs — local vs broker fleet "
                f"(warm ratio {warm_ratio:.2f}x, bar: 2x)"
            ),
        )
    )


def test_admission_control_sheds_without_losing_accepted_requests(
        report, bench_json):
    """The overload scenario: a 16-request burst into a server bounded
    at ``max_queue_depth=4``.  Asserted: shedding engages (non-zero
    overloaded count), every accepted request completes bit-identically
    to a serial reference, and requests are neither lost nor answered
    twice."""
    jobs = dse_jobs(dse_grid(slices=tuple(range(1, 9)),
                             voltages=(None, 0.9)))  # 16 points
    reference = {r.job_hash: r.value
                 for r in run_jobs(jobs, executor="serial").results}

    async def burst():
        srv = AsyncServer(dispatcher=LocalDispatcher("serial"),
                          batch_window_s=0.05, max_batch=4,
                          max_queue_depth=4)
        tasks = [asyncio.ensure_future(srv.submit(spec)) for spec in jobs]
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        stats = srv.stats()
        await srv.aclose()
        await srv.dispatcher.aclose()
        return outcomes, stats

    outcomes, stats = asyncio.run(burst())

    shed = [o for o in outcomes if isinstance(o, ServerOverloadedError)]
    unexpected = [o for o in outcomes
                  if isinstance(o, Exception)
                  and not isinstance(o, ServerOverloadedError)]
    accepted = [(spec, o) for spec, o in zip(jobs, outcomes)
                if not isinstance(o, Exception)]
    assert not unexpected, f"non-overload failures: {unexpected!r}"
    # Every request is answered exactly once: accepted + shed = burst.
    assert len(accepted) + len(shed) == len(jobs)
    assert shed, "overload never engaged at max_queue_depth=4"
    assert accepted, "admission control accepted nothing"
    for spec, result in accepted:
        assert result.ok, f"accepted request failed: {result.error}"
        assert result.value == reference[spec.job_hash], (
            "accepted request diverged from the serial reference")
    assert stats["shed"] == len(shed)

    bench_json.metric("overload_shed", len(shed), direction="info",
                      unit="requests")
    bench_json.metric("overload_accepted", len(accepted), direction="info",
                      unit="requests")

    report.add(
        render_table(
            ["burst", "accepted", "shed", "max queue depth"],
            [[len(jobs), len(accepted), len(shed), 4]],
            title="serve admission control — shed-under-load, lossless",
        )
    )
