"""Fig. 5a — power consumption vs slice count at the paper's benchmark.

The paper's power workload: a sample eCNN layer whose input events keep
every slice and cluster updating, events spread over 100 timesteps, ~5%
output activity.  We rebuild that workload on the cycle-level simulator
(the benchmarked kernel), then report the calibrated dynamic/leakage
split next to the paper's totals.
"""

import numpy as np
import pytest

from repro.analysis import ComparisonRow, render_comparison, render_table
from repro.energy import FIG5A_TOTAL_MW, PowerModel
from repro.events import EventStream
from repro.hw import SNE, LayerGeometry, LayerKind, LayerProgram, SNEConfig


def paper_power_workload(n_slices: int, n_steps: int = 100, seed: int = 0):
    """A layer + stream that touch all clusters of an n-slice SNE.

    A dense layer with 1024*n_slices outputs makes every event update
    every neuron (the paper's worst case); thresholds are tuned to emit
    roughly 5% output activity.
    """
    n_outputs = 1024 * n_slices
    rng = np.random.default_rng(seed)
    geometry = LayerGeometry(LayerKind.DENSE, 1, 4, 4, n_outputs, 1, 1)
    weights = rng.integers(-2, 4, (n_outputs, 16))
    program = LayerProgram(geometry, weights, threshold=14, leak=1)
    dense = (rng.random((n_steps, 1, 4, 4)) < 0.15).astype(np.uint8)
    return program, EventStream.from_dense(dense)


@pytest.fixture(scope="module")
def power():
    return PowerModel()


def test_fig5a_power_vs_slices(benchmark, power, report):
    def run_one_slice_config():
        program, stream = paper_power_workload(1)
        _, stats = SNE(SNEConfig(n_slices=1)).run_layer(program, stream)
        return stats

    stats = benchmark(run_one_slice_config)

    # The paper's workload property: all clusters update on every event.
    assert stats.utilization() > 0.9
    activity = stats.output_events / (1024 * stats.fire_events)
    assert 0.005 < activity < 0.15  # around the paper's 5% regime

    rows, comp = [], []
    for n in (1, 2, 4, 8):
        b = power.fig5a_breakdown(n)
        rows.append([n, b.dynamic_mw, b.leakage_mw, b.total_mw])
        comp.append(
            ComparisonRow(f"total power @ {n} slices", FIG5A_TOTAL_MW[n], b.total_mw, "mW")
        )
    report.add(
        render_table(
            ["slices", "dynamic [mW]", "leakage [mW]", "total [mW]"],
            rows,
            title="Fig. 5a — power at the all-clusters-updating benchmark (0.8 V TT)",
        )
    )
    report.add(render_comparison(comp, title="Fig. 5a anchors"))

    # Shape: dynamic dominates, total at 8 slices is Table II's 11.29 mW.
    for n in (1, 2, 4, 8):
        b = power.fig5a_breakdown(n)
        assert b.dynamic_mw > 10 * b.leakage_mw
    assert power.fig5a_breakdown(8).total_mw == pytest.approx(11.29, rel=0.001)


def test_fig5a_power_tracks_utilization(benchmark, power, report):
    """Clock gating: a sparse layer must burn less than the worst case."""

    def run_sparse():
        rng = np.random.default_rng(1)
        g = LayerGeometry(LayerKind.CONV, 2, 16, 16, 4, 16, 16, kernel=3, padding=1)
        prog = LayerProgram(g, rng.integers(-2, 3, (4, 2, 3, 3)), threshold=50, leak=0)
        dense = (rng.random((20, 2, 16, 16)) < 0.03).astype(np.uint8)
        _, stats = SNE(SNEConfig(n_slices=1)).run_layer(prog, EventStream.from_dense(dense))
        return stats

    stats = benchmark(run_sparse)
    sparse_power = power.total_mw(1, stats.utilization())
    full_power = power.total_mw(1, 1.0)
    report.add(
        render_table(
            ["workload", "utilization", "power [mW]"],
            [
                ["paper benchmark (all clusters)", 1.0, full_power],
                ["sparse conv layer", round(stats.utilization(), 4), sparse_power],
            ],
            title="Fig. 5a companion — power follows cluster utilization",
        )
    )
    assert stats.utilization() < 0.5
    assert sparse_power < full_power
