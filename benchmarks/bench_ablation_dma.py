"""ABL5 — DMA latency / prefetch-FIFO sensitivity (§III-D.2).

'The DMA contains a 16-words FIFO event memory to absorb memory latency
cycles (e.g., due to access contention).'  The ablation measures input
starvation as a function of memory latency and FIFO depth: with the
shipped 16-deep FIFO and the 48-cycle event window, the consumer never
starves after the initial fill — even at high latency — while a
degenerate 1-deep FIFO starves on every word once latency exceeds the
event window.
"""

import numpy as np

from repro.analysis import render_table
from repro.events import EventStream, encode_inference
from repro.hw import DmaStreamer, MainMemory, SNEConfig


def event_image(seed=0, density=0.15, n_steps=10):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n_steps, 2, 8, 8)) < density).astype(np.uint8)
    return encode_inference(EventStream.from_dense(dense))


def run_streamer(latency, fifo_depth, words):
    config = SNEConfig(n_slices=1, dma_fifo_depth=fifo_depth, memory_latency=latency)
    memory = MainMemory(words.size, latency=latency)
    memory.load_image(0, words)
    dma = DmaStreamer(config, memory)
    waits = [w for _, w in dma.stream_in(0, words.size)]
    return dma, waits


def test_paper_fifo_absorbs_memory_latency(benchmark, report):
    words = event_image()

    def run():
        return run_streamer(latency=8, fifo_depth=16, words=words)

    dma, waits = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for latency in (2, 8, 32):
        _, w = run_streamer(latency, 16, words)
        rows.append([latency, 16, w[0], sum(w[1:])])
    report.add(
        render_table(
            ["memory latency [cycles]", "FIFO depth", "first-word wait", "steady-state waits"],
            rows,
            title="ABL5 — the 16-deep DMA FIFO hides memory latency",
        )
    )
    # After the initial fill, the 48-cycle consumption rate gives the
    # prefetcher ample slack: zero steady-state starvation.
    assert sum(waits[1:]) == 0
    assert dma.stats.words_read == words.size


def test_degenerate_fifo_starves(benchmark, report):
    words = event_image(seed=1)
    # A pathological consumer (1 cycle/event) exposes the latency.
    def run():
        config = SNEConfig(
            n_slices=1, dma_fifo_depth=1, memory_latency=12,
            cycles_per_event=1, cycles_per_fire=1,
        )
        memory = MainMemory(words.size, latency=12)
        memory.load_image(0, words)
        dma = DmaStreamer(config, memory)
        list(dma.stream_in(0, words.size))
        return dma

    dma = benchmark.pedantic(run, rounds=1, iterations=1)
    report.add(
        render_table(
            ["configuration", "starved cycles"],
            [
                ["FIFO 1, latency 12, 1-cycle consumer", dma.stats.starved_cycles],
                ["FIFO 16, latency 8, 48-cycle consumer", 0],
            ],
            title="ABL5 — starvation appears only in the degenerate configuration",
        )
    )
    assert dma.stats.starved_cycles > 0
