"""Table II — comparison with the state of the art.

The literature rows are transcribed records; the SNE row is *computed*
from the calibrated models, so the winning margins (lowest pJ/SOP,
highest TSOP/s/W, 3.55x over Tianjic, smallest neuron area) are
regenerated rather than copied.
"""

import pytest

from repro.analysis import ComparisonRow, render_comparison, render_table
from repro.baselines import TABLE2_LITERATURE, improvement_over, sne_record
from repro.energy import EfficiencyModel
from repro.hw import PAPER_CONFIG


def test_table2_state_of_the_art(benchmark, report):
    sne = benchmark(sne_record)

    headers = [
        "name", "tech", "type", "neurons", "neuron area [um2]",
        "perf [GOP/s]", "eff [TOP/s/W]", "E/SOP [pJ]", "freq [MHz]",
        "power [mW]", "bits", "V",
    ]
    rows = []
    for r in (sne, *TABLE2_LITERATURE):
        rows.append(
            [
                r.name, f"{r.technology_nm}nm", r.implementation, r.n_neurons,
                r.neuron_area_um2, r.performance_gops, r.efficiency_tops_w,
                r.energy_per_sop_pj,
                r.freq_mhz if r.freq_mhz is not None else "async",
                r.power_mw, r.weight_bits, r.voltage,
            ]
        )
    report.add(render_table(headers, rows, title="Table II — state-of-the-art comparison"))

    tianjic = next(r for r in TABLE2_LITERATURE if r.name == "Tianjic")
    ratio = improvement_over(sne, tianjic)
    report.add(
        render_comparison(
            [
                ComparisonRow("SNE energy/SOP", 0.221, sne.energy_per_sop_pj, "pJ"),
                ComparisonRow("SNE efficiency", 4.54, sne.efficiency_tops_w, "TSOP/s/W"),
                ComparisonRow("improvement over Tianjic", 3.55, ratio, "x"),
                ComparisonRow("SNE power", 11.29, sne.power_mw, "mW"),
                ComparisonRow("SNE neurons", 8192, sne.n_neurons, ""),
            ],
            title="Table II anchors",
        )
    )

    # The table's claims: SNE wins both efficiency metrics.
    for r in TABLE2_LITERATURE:
        if r.energy_per_sop_pj is not None:
            assert sne.energy_per_sop_pj < r.energy_per_sop_pj
        if r.efficiency_tops_w is not None:
            assert sne.efficiency_tops_w > r.efficiency_tops_w
    assert ratio == pytest.approx(3.55, abs=0.02)


def test_table2_voltage_extrapolation(benchmark, report):
    """'Extrapolating to 0.9 V, SNE would still achieve 4.03 TOP/s/W and
    consume 0.248 pJ/SOP' — and still beat Tianjic at its own voltage."""
    eff = EfficiencyModel()

    def extrapolate():
        return (
            eff.efficiency_tsops_w(PAPER_CONFIG, voltage=0.9),
            eff.energy_per_sop_pj(PAPER_CONFIG, voltage=0.9),
        )

    tsops, esop = benchmark(extrapolate)
    report.add(
        render_comparison(
            [
                ComparisonRow("efficiency @ 0.9 V", 4.03, tsops, "TSOP/s/W"),
                ComparisonRow("energy/SOP @ 0.9 V", 0.248, esop, "pJ"),
            ],
            title="Table II — 0.9 V extrapolation",
        )
    )
    assert tsops == pytest.approx(4.03, rel=0.01)
    assert esop == pytest.approx(0.248, rel=0.01)
    tianjic = next(r for r in TABLE2_LITERATURE if r.name == "Tianjic")
    assert tsops > tianjic.efficiency_tops_w
