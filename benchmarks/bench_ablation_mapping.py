"""ABL3 — mapping-mode comparison (§III-D.5).

When the network fits on-chip, each slice can host one layer and events
flow through the C-XBAR (layer-parallel); otherwise layers run one at a
time with feature maps spilled through the DMAs (time-multiplexed).
The ablation measures what the paper asserts qualitatively: the
pipelined mode overlaps layer execution (lower latency) and avoids the
external-memory round-trips (lower DMA traffic).
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.events import EventStream
from repro.hw import SNE, LayerGeometry, LayerKind, LayerProgram, SNEConfig


@pytest.fixture(scope="module")
def two_layer_network():
    rng = np.random.default_rng(0)
    p1 = LayerProgram(
        LayerGeometry(LayerKind.CONV, 1, 8, 8, 1, 8, 8, kernel=3, padding=1),
        rng.integers(-2, 4, (1, 1, 3, 3)),
        threshold=3,
        leak=0,
    )
    p2 = LayerProgram(
        LayerGeometry(LayerKind.DENSE, 1, 8, 8, 10, 1, 1),
        rng.integers(-2, 3, (10, 64)),
        threshold=4,
        leak=0,
    )
    dense = (np.random.default_rng(1).random((12, 1, 8, 8)) < 0.15).astype(np.uint8)
    return [p1, p2], EventStream.from_dense(dense)


def test_mapping_modes_same_results_different_costs(benchmark, two_layer_network, report):
    programs, stream = two_layer_network
    config = SNEConfig(n_slices=2)

    def run_both():
        out_tm, s_tm = SNE(config).run_network(programs, stream)
        out_pl, s_pl = SNE(config).run_network_pipelined(programs, stream)
        return out_tm, s_tm, out_pl, s_pl

    out_tm, s_tm, out_pl, s_pl = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report.add(
        render_table(
            ["mode", "cycles", "latency [us]", "DMA words in", "DMA words out", "SOPs"],
            [
                ["time-multiplexed", s_tm.cycles, s_tm.time_s(config) * 1e6,
                 s_tm.dma_words_in, s_tm.dma_words_out, s_tm.sops],
                ["layer-parallel", s_pl.cycles, s_pl.time_s(config) * 1e6,
                 s_pl.dma_words_in, s_pl.dma_words_out, s_pl.sops],
            ],
            title="ABL3 — mapping modes on a 2-layer network (2 slices)",
        )
    )

    # Same computation...
    assert out_tm == out_pl
    assert s_tm.sops == s_pl.sops
    # ...but the pipelined mode overlaps layers and keeps events on-chip.
    assert s_pl.cycles < s_tm.cycles
    assert s_pl.dma_words_in < s_tm.dma_words_in


def test_pipelined_speedup_grows_with_depth(benchmark, report):
    """More layers => more overlap to win: latency ratio improves."""
    rng = np.random.default_rng(2)

    def chain(n_layers):
        programs = []
        for i in range(n_layers):
            programs.append(
                LayerProgram(
                    LayerGeometry(LayerKind.CONV, 1, 8, 8, 1, 8, 8, kernel=3, padding=1),
                    rng.integers(-1, 3, (1, 1, 3, 3)),
                    threshold=2,
                    leak=0,
                )
            )
        return programs

    stream = EventStream.from_dense(
        (np.random.default_rng(3).random((10, 1, 8, 8)) < 0.2).astype(np.uint8)
    )

    def measure(n_layers):
        programs = chain(n_layers)
        config = SNEConfig(n_slices=n_layers)
        _, s_tm = SNE(config).run_network(programs, stream)
        _, s_pl = SNE(config).run_network_pipelined(programs, stream)
        return s_tm.cycles / s_pl.cycles

    speedup2 = benchmark.pedantic(lambda: measure(2), rounds=1, iterations=1)
    speedup4 = measure(4)
    report.add(
        render_table(
            ["network depth", "time-multiplexed / pipelined latency"],
            [[2, f"{speedup2:.2f}x"], [4, f"{speedup4:.2f}x"]],
            title="ABL3 — pipelining speedup vs depth",
        )
    )
    assert speedup2 > 1.0
    assert speedup4 > speedup2
