"""Shared benchmark plumbing.

Every benchmark prints its paper-vs-measured table and also appends it
to ``benchmarks/results_last_run.md`` through the ``report`` fixture, so
one ``pytest benchmarks/ --benchmark-only`` run regenerates the full
comparison record that EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results_last_run.md"


class Reporter:
    """Accumulates rendered tables and flushes them to disk."""

    def __init__(self) -> None:
        self.sections: list[str] = []

    def add(self, text: str) -> None:
        self.sections.append(text)
        print("\n" + text)

    def flush(self) -> None:
        if self.sections:
            RESULTS_PATH.write_text("\n\n".join(self.sections) + "\n")


@pytest.fixture(scope="session")
def report():
    reporter = Reporter()
    yield reporter
    reporter.flush()
