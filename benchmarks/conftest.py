"""Shared benchmark plumbing.

Every benchmark prints its paper-vs-measured table and also appends it
to ``benchmarks/results_last_run.md`` through the ``report`` fixture, so
one ``pytest benchmarks/ --benchmark-only`` run regenerates the full
comparison record that EXPERIMENTS.md quotes.

The ``bench_json`` fixture is the machine-readable side of the same
story: each ``bench_<name>.py`` module records named metrics (timings,
throughputs, accuracies) into ``BENCH_<name>.json`` at the repository
root.  ``tools/bench_compare.py`` diffs those files against the
committed baselines in ``benchmarks/baselines/`` and fails CI on a
>20% regression — the ``make bench-gate`` target wires both halves
together.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results_last_run.md"

#: Machine-readable benchmark records land next to CHANGES.md so the
#: perf trajectory of the repository is one `git diff BENCH_*.json` away.
BENCH_JSON_DIR = pathlib.Path(__file__).parent.parent

BENCH_SCHEMA = 1


class Reporter:
    """Accumulates rendered tables and flushes them to disk."""

    def __init__(self) -> None:
        self.sections: list[str] = []

    def add(self, text: str) -> None:
        self.sections.append(text)
        print("\n" + text)

    def flush(self) -> None:
        if self.sections:
            RESULTS_PATH.write_text("\n\n".join(self.sections) + "\n")


@pytest.fixture(scope="session")
def report():
    reporter = Reporter()
    yield reporter
    reporter.flush()


_CALIBRATION: float | None = None


def machine_calibration() -> float:
    """Wall seconds of a fixed numpy kernel (best of 5), memoised.

    Shared runners and containers drift in effective CPU speed between
    runs; recording this per-session constant alongside every timing
    lets ``tools/bench_compare.py`` normalise second-valued metrics by
    the machine-speed ratio before applying the regression tolerance,
    so the gate trips on code regressions, not on a slow afternoon.
    The kernel mixes small-array calls (the simulator's dominant cost
    shape) with one larger scan.
    """
    global _CALIBRATION
    if _CALIBRATION is None:
        rng = np.random.default_rng(0)
        small = rng.integers(-8, 8, 4096)
        big = rng.random(1_000_000)
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            for _ in range(300):
                np.cumsum(small)
                np.argsort(small[:512], kind="stable")
                np.maximum(small, 0)
            np.sort(big)
            best = min(best, time.perf_counter() - t0)
        _CALIBRATION = best
    return _CALIBRATION


class BenchRecorder:
    """Collects one benchmark module's metrics for ``BENCH_<name>.json``.

    Each metric carries a comparison direction for the regression gate:
    ``lower`` (timings — regressions are increases), ``higher``
    (throughputs/accuracies — regressions are decreases) or ``info``
    (recorded but never gated).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.metrics: dict[str, dict] = {}

    def metric(self, key: str, value: float, direction: str = "info",
               unit: str = "") -> None:
        """Record one named metric (last write per key wins)."""
        if direction not in ("lower", "higher", "info"):
            raise ValueError(f"direction must be lower/higher/info, got {direction!r}")
        self.metrics[key] = {
            "value": float(value), "direction": direction, "unit": unit,
        }

    def timing(self, key: str, seconds: float) -> None:
        """Record one wall-time metric (gated: lower is better)."""
        self.metric(key, seconds, direction="lower", unit="s")

    def from_benchmark(self, benchmark, key: str = "mean_s") -> None:
        """Record the mean of a ``pytest-benchmark`` fixture run."""
        stats = getattr(getattr(benchmark, "stats", None), "stats", None)
        if stats is not None:
            self.timing(key, stats.mean)

    def flush(self) -> None:
        """Write ``BENCH_<name>.json`` (skipped while empty)."""
        if not self.metrics:
            return
        path = BENCH_JSON_DIR / f"BENCH_{self.name}.json"
        doc = {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "calibration_s": machine_calibration(),
            "metrics": self.metrics,
        }
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def bench_json(request):
    """Per-module :class:`BenchRecorder`, flushed after the module runs.

    The record name is the module name with its ``bench_`` prefix
    stripped, so ``bench_fig5b_perf.py`` emits ``BENCH_fig5b_perf.json``.
    """
    name = request.module.__name__.removeprefix("bench_")
    recorder = BenchRecorder(name)
    yield recorder
    recorder.flush()
