"""Verification bench: randomized co-simulation of the two model paths.

Not a paper artefact but the reproduction's own soundness check, kept
in the benchmark suite so every full run re-fuzzes the equivalence
between the event-driven cycle model and the dense golden model across
random layer kinds, geometries and traffic (the RTL-vs-C-model flow a
hardware project would run in CI).
"""

from repro.analysis import render_table
from repro.hw import LayerKind, fuzz


def test_cosimulation_fuzz(benchmark, report, bench_json):
    def run_corpus():
        return fuzz(40, seed0=1000)

    results = benchmark.pedantic(run_corpus, rounds=1, iterations=1)
    bench_json.from_benchmark(benchmark, "corpus_40_cases_s")
    bench_json.metric("cases", len(results))

    failures = [r for r in results if not r.matched]
    skipped = sum(r.skipped_saturation for r in results)
    by_kind = {kind: 0 for kind in LayerKind}
    for r in results:
        by_kind[r.case.program.geometry.kind] += 1

    report.add(
        render_table(
            ["quantity", "value"],
            [
                ["cases", len(results)],
                ["matched", len(results) - len(failures)],
                ["mismatched", len(failures)],
                ["skipped (saturation regime)", skipped],
                ["conv / depthwise / dense",
                 f"{by_kind[LayerKind.CONV]} / {by_kind[LayerKind.DEPTHWISE]} / {by_kind[LayerKind.DENSE]}"],
            ],
            title="VERIF — randomized co-simulation (event-driven vs dense golden)",
        )
    )
    assert not failures
    # The corpus must exercise every layer kind to mean anything.
    assert all(count > 0 for count in by_kind.values())
    # And most cases must actually run (not be skipped).
    assert skipped < len(results) / 2
