"""Fig. 4 — area breakdown (kGE) for 1/2/4/8 slices.

Regenerates the figure's data: per-component kGE, totals, the constant
DMA cost and its shrinking share, and the Table II per-neuron area.
The benchmarked kernel is the model evaluation across the full sweep.
"""

import pytest

from repro.analysis import ComparisonRow, render_comparison, render_table
from repro.energy import COMPONENTS, FIG4_ANCHORS, FIG4_SLICES, AreaModel


@pytest.fixture(scope="module")
def model():
    return AreaModel()


def test_fig4_area_breakdown(benchmark, model, report):
    breakdowns = benchmark(
        lambda: {n: model.breakdown_kge(n) for n in FIG4_SLICES}
    )

    rows = []
    for component in COMPONENTS:
        rows.append([component] + [breakdowns[n][component] for n in FIG4_SLICES])
    rows.append(["TOTAL"] + [sum(breakdowns[n].values()) for n in FIG4_SLICES])
    report.add(
        render_table(
            ["component [kGE]"] + [f"{n} slices" for n in FIG4_SLICES],
            rows,
            title="Fig. 4 — SNE area breakdown (measured; anchors = paper values)",
        )
    )
    report.add(
        render_comparison(
            [
                ComparisonRow(
                    f"memory kGE @ {n} slices",
                    FIG4_ANCHORS["memory"][i],
                    breakdowns[n]["memory"],
                    "kGE",
                )
                for i, n in enumerate(FIG4_SLICES)
            ]
            + [
                ComparisonRow("neuron area", 19.9, model.neuron_area_um2(), "um2"),
            ],
            title="Fig. 4 / Table II anchors",
        )
    )

    # Shape assertions: the paper's three qualitative observations.
    for n in FIG4_SLICES:
        assert breakdowns[n]["memory"] == max(breakdowns[n].values())
    assert len({breakdowns[n]["streamers"] for n in FIG4_SLICES}) == 1
    fractions = [model.dma_fraction(n) for n in FIG4_SLICES]
    assert all(a > b for a, b in zip(fractions, fractions[1:]))
    assert model.neuron_area_um2() == pytest.approx(19.9, rel=0.01)
