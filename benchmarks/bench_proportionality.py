"""TXT3 — the title claim: operations (and energy) proportional to events.

Sweeps input activity on the cycle simulator, fits cycles/energy against
the event count, and compares with the sparsity-oblivious dense engine
whose cost is flat.  The paper's regime (1-5 % activity) sits far below
the dense crossover.
"""

import numpy as np
import pytest

from repro.analysis import render_table, sweep_activity
from repro.baselines import DenseEngine
from repro.events import EventStream
from repro.hw import LayerGeometry, LayerKind, LayerProgram, SNEConfig


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    # 4 x 16 x 16 = 1024 outputs: exactly one pass on a 1-slice SNE, so
    # the fitted slope is the bare 48-cycle event window.
    g = LayerGeometry(LayerKind.CONV, 2, 16, 16, 4, 16, 16, kernel=3, padding=1)
    program = LayerProgram(g, rng.integers(-2, 3, (4, 2, 3, 3)), threshold=60, leak=1)
    dense = (rng.random((20, 2, 16, 16)) < 0.30).astype(np.uint8)
    return program, EventStream.from_dense(dense)


def test_energy_proportionality_sweep(benchmark, workload, report):
    program, base_stream = workload
    activities = [0.01, 0.02, 0.05, 0.10, 0.20]

    def run_sweep():
        return sweep_activity(
            program, base_stream, activities, config=SNEConfig(n_slices=1)
        )

    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report.add(
        render_table(
            ["activity", "events", "cycles", "SOPs", "SNE energy [uJ]", "dense energy [uJ]"],
            [
                [f"{p.activity:.3f}", p.n_events, p.cycles, p.sops,
                 p.sne_energy_uj, p.dense_energy_uj]
                for p in sweep.points
            ],
            title="TXT3 — activity sweep: SNE cost vs the dense engine",
        )
    )
    report.add(
        render_table(
            ["fit", "slope", "intercept", "R^2"],
            [
                ["cycles vs events", sweep.cycles_fit.slope,
                 sweep.cycles_fit.intercept, sweep.cycles_fit.r_squared],
                ["energy vs events", sweep.energy_fit.slope,
                 sweep.energy_fit.intercept, sweep.energy_fit.r_squared],
            ],
            title="TXT3 — proportionality fits",
        )
    )

    # Proportionality: near-perfect linearity, slope = the 48-cycle window.
    assert sweep.cycles_fit.r_squared > 0.999
    assert sweep.cycles_fit.slope == pytest.approx(48, rel=0.02)
    assert sweep.energy_fit.r_squared > 0.99
    # In the paper's regime the event-driven engine beats the dense one.
    paper_regime = [p for p in sweep.points if p.activity <= 0.05]
    assert paper_regime, "sweep must cover the 1-5% regime"
    for p in paper_regime:
        assert p.sne_energy_uj < p.dense_energy_uj


def test_dense_crossover_far_above_event_regime(benchmark, workload, report):
    """Quantify where the dense engine would win: far above 5% activity."""
    program, base_stream = workload
    config = SNEConfig(n_slices=1)

    def crossover():
        sweep = sweep_activity(
            program, base_stream, [0.01, 0.05], config=config
        )
        per_event_uj = sweep.energy_fit.slope
        full_events = base_stream.n_sites  # activity 1.0
        return DenseEngine().crossover_activity(
            [program], base_stream.n_steps, per_event_uj, full_events
        )

    activity_crossover = benchmark.pedantic(crossover, rounds=1, iterations=1)
    report.add(
        render_table(
            ["quantity", "value"],
            [
                ["dense/SNE crossover activity", f"{activity_crossover:.3f}"],
                ["paper's observed DVS-Gesture activity", "0.012 - 0.049"],
            ],
            title="TXT3 — crossover analysis",
        )
    )
    assert activity_crossover > 0.049  # event data never reaches it
