"""Runtime scaling — backend parity, cache-hit speedup, backend sweep.

Three claims the orchestration layer must uphold before any later
scaling work builds on it:

1. every registered execution backend (serial / thread / process / …)
   is a pure speedup: its sweep is bit-identical to the serial
   reference, in the same order;
2. the result store turns repeat invocations into near-free replays:
   a second identical run is served >= 90 % from disk (here: 100 %) and
   its wall-clock collapses accordingly;
3. the backend registry scales: the three shipped backends all complete
   the same 64-point sweep, and their wall-clocks are reported side by
   side.

Machine-dependent wall-clock (worker count, core count) is *reported*,
not asserted; determinism and hit rates are asserted.
"""

import time

from repro.analysis import render_table
from repro.events import SyntheticDVSGesture
from repro.hw import PAPER_CONFIG, HardwareEvaluator, compile_network, report_from_job_results
from repro.runtime import (
    ProcessExecutor,
    ResultCache,
    ResultStore,
    SerialExecutor,
    available_backends,
    dse_grid,
    dse_jobs,
    make_backend,
    run_jobs,
)
from repro.snn import build_small_network

SWEEP_JOBS = dse_jobs(
    dse_grid(
        slices=(1, 2, 3, 4, 5, 6, 7, 8),
        voltages=(None, 0.7, 0.9, 1.0),
        utilizations=(1.0, 0.5),
    )
)  # 64 design points


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def test_sweep_parallel_parity_and_cache_hits(benchmark, report, tmp_path):
    serial, t_serial = _timed(lambda: run_jobs(SWEEP_JOBS, executor=SerialExecutor()))
    parallel, t_parallel = _timed(
        lambda: run_jobs(SWEEP_JOBS, executor=ProcessExecutor(workers=2))
    )

    # Parallel dispatch is bit-identical to the serial reference, in order.
    assert [r.job_hash for r in parallel.results] == [r.job_hash for r in serial.results]
    assert [r.value for r in parallel.results] == [r.value for r in serial.results]

    cache = ResultCache(tmp_path / "sweep")
    cold, t_cold = _timed(lambda: run_jobs(SWEEP_JOBS, cache=cache))
    warm, t_warm = _timed(lambda: run_jobs(SWEEP_JOBS, cache=cache))
    benchmark(lambda: run_jobs(SWEEP_JOBS, cache=cache))  # warm-path timing stats

    # Acceptance: the repeat invocation is served >= 90 % from the cache.
    assert warm.stats.hit_rate >= 0.9
    assert warm.stats.misses == 0 and warm.stats.failures == 0
    assert [r.value for r in warm.results] == [r.value for r in cold.results]
    assert cold.stats.misses == len(SWEEP_JOBS)

    report.add(
        render_table(
            ["path", "jobs", "cache hits", "computed", "time [s]"],
            [
                ["serial", serial.stats.total, serial.stats.hits, serial.stats.misses, f"{t_serial:.4f}"],
                ["process x2", parallel.stats.total, parallel.stats.hits, parallel.stats.misses, f"{t_parallel:.4f}"],
                ["cache cold", cold.stats.total, cold.stats.hits, cold.stats.misses, f"{t_cold:.4f}"],
                ["cache warm", warm.stats.total, warm.stats.hits, warm.stats.misses, f"{t_warm:.4f}"],
            ],
            title=(
                "runtime scaling — 64-point DSE sweep "
                f"(warm hit rate {warm.stats.hit_rate:.0%})"
            ),
        )
    )


def test_three_backend_scaling_comparison(benchmark, report, tmp_path):
    """The same 64-point sweep through every registered backend.

    Asserts bit-identical ordered values everywhere; reports each
    backend's cold wall-clock plus a shared-store warm replay, which is
    the deployment shape: one collaborator computes, everyone replays.
    """
    reference = run_jobs(SWEEP_JOBS, executor="serial")
    rows = []
    for name in available_backends():
        backend = make_backend(name, workers=2 if name != "serial" else None)
        run, elapsed = _timed(lambda b=backend: run_jobs(SWEEP_JOBS, executor=b))
        assert [r.job_hash for r in run.results] == [
            r.job_hash for r in reference.results
        ], f"backend {name!r} reordered results"
        assert [r.value for r in run.results] == [
            r.value for r in reference.results
        ], f"backend {name!r} diverged from serial"
        rows.append([name, run.stats.workers, run.stats.total, f"{elapsed:.4f}"])

    # One backend fills the shared store; every other backend replays it.
    store = ResultStore(tmp_path / "shared")
    run_jobs(SWEEP_JOBS, executor="serial", cache=store)
    for name in available_backends():
        warm, elapsed = _timed(
            lambda n=name: run_jobs(SWEEP_JOBS, executor=n, cache=store)
        )
        assert warm.stats.hit_rate == 1.0, f"backend {name!r} missed the shared store"
        assert [r.value for r in warm.results] == [r.value for r in reference.results]
        rows.append([f"{name} (warm store)", warm.stats.workers,
                     warm.stats.total, f"{elapsed:.4f}"])
    benchmark(lambda: run_jobs(SWEEP_JOBS, executor="serial", cache=store))

    report.add(
        render_table(
            ["backend", "workers", "jobs", "time [s]"],
            rows,
            title="runtime scaling — 64-point DSE sweep across backends",
        )
    )


def test_hw_eval_parallel_parity_and_cache_speedup(benchmark, report, tmp_path,
                                                   bench_json):
    data = SyntheticDVSGesture(size=16, n_steps=8).generate(n_per_class=1, seed=7)
    net = build_small_network(input_size=16, n_classes=11, channels=4, hidden=16, seed=2)
    evaluator = HardwareEvaluator(
        compile_network(net, (2, 16, 16)), PAPER_CONFIG.with_slices(2)
    )
    jobs = evaluator.sample_jobs(data)

    serial, t_serial = _timed(lambda: run_jobs(jobs, executor=SerialExecutor()))
    parallel, t_parallel = _timed(
        lambda: run_jobs(jobs, executor=ProcessExecutor(workers=2, chunk_size=2))
    )
    assert [r.value for r in parallel.results] == [r.value for r in serial.results]
    assert report_from_job_results(parallel.results).accuracy == (
        report_from_job_results(serial.results).accuracy
    )

    cache = ResultCache(tmp_path / "eval")
    cold, t_cold = _timed(lambda: run_jobs(evaluator.sample_jobs(data), cache=cache))
    warm, t_warm = _timed(lambda: run_jobs(evaluator.sample_jobs(data), cache=cache))
    benchmark(lambda: run_jobs(evaluator.sample_jobs(data), cache=cache))

    assert warm.stats.hit_rate >= 0.9
    assert warm.stats.misses == 0
    assert report_from_job_results(warm.results) == report_from_job_results(cold.results)
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")

    report.add(
        render_table(
            ["path", "samples", "cache hits", "time [s]"],
            [
                ["serial", serial.stats.total, serial.stats.hits, f"{t_serial:.4f}"],
                ["process x2", parallel.stats.total, parallel.stats.hits, f"{t_parallel:.4f}"],
                ["cache cold", cold.stats.total, cold.stats.hits, f"{t_cold:.4f}"],
                ["cache warm", warm.stats.total, warm.stats.hits, f"{t_warm:.4f}"],
            ],
            title=(
                "runtime scaling — hardware-in-the-loop per-sample jobs "
                f"(cache speedup {speedup:.1f}x, warm hit rate {warm.stats.hit_rate:.0%})"
            ),
        )
    )
    bench_json.timing("hw_eval_cold_s", t_cold)
    # Single-digit-millisecond warm timings flake past 20%; the
    # same-run speedup ratio carries the regression signal instead.
    bench_json.metric("hw_eval_warm_s", t_warm, direction="info", unit="s")
    bench_json.metric("cache_speedup_x", speedup, direction="info", unit="x")
    bench_json.metric("warm_hit_rate", warm.stats.hit_rate, direction="higher")
    # The cache must beat recomputation, with margin for timer noise.
    assert t_warm < t_cold
